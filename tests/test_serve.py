"""Tests of the long-running serving daemon (``repro.serve``).

The acceptance contract: the same seed yields identical swap epochs,
rollback decisions, and ``serve.*`` totals across two runs AND across a
kill-and-``--resume`` versus an uninterrupted session; under the fault
drill the service completes its request stream on the incumbent table
with zero sanitizer findings — degradation counters move, the daemon
never dies.
"""

import dataclasses

import pytest

from repro import obs
from repro.allocators.base import AddressSpace
from repro.allocators.group import GroupAllocator
from repro.allocators.size_class import SizeClassAllocator
from repro.faults.plan import FaultPlan
from repro.machine import GroupStateVector
from repro.sanitize.invariants import validate_allocator
from repro.serve import (
    MixPhase,
    ServeConfig,
    ServeError,
    ServeService,
    drill_plan,
    run_serve,
    serve_journal,
)


def small_config(**overrides) -> ServeConfig:
    """A session small enough for CI: 4 epochs, 2 scheduled regroups."""
    settings = dict(
        seed=5,
        requests=48,
        epoch_requests=12,
        window_epochs=2,
        request_factor=0.02,
    )
    settings.update(overrides)
    return ServeConfig(**settings)


def stats_dict(report):
    return dataclasses.asdict(report.stats)


class TestDeterminism:
    def test_same_seed_same_session(self):
        first = run_serve(small_config())
        second = run_serve(small_config())
        assert first.completed and second.completed
        assert stats_dict(first) == stats_dict(second)
        assert first.generation == second.generation
        # The session actually exercised the control loop.
        assert first.stats.swaps >= 1
        assert first.stats.swap_epochs
        assert first.stats.snapshots == 0  # no state dir attached

    def test_different_seeds_still_complete(self):
        report = run_serve(small_config(seed=11))
        assert report.completed
        assert report.stats.requests == 48
        assert report.stats.sanitize_findings == 0

    def test_config_digest_guards_resume(self, tmp_path):
        config = small_config()
        run_serve(config, state_dir=tmp_path)
        store = serve_journal(tmp_path, config)
        snapshot = store.load()
        assert snapshot is not None
        other = small_config(seed=6)
        service = ServeService(other, store=serve_journal(tmp_path, other))
        with pytest.raises(ServeError):
            service.restore(snapshot)


class TestKillAndResume:
    def test_resume_matches_uninterrupted(self, tmp_path):
        config = small_config()
        clean = run_serve(config, state_dir=tmp_path / "clean")

        killed = tmp_path / "killed"
        interrupted = run_serve(
            config, state_dir=killed, stop_after=20, stop_mode="kill"
        )
        assert not interrupted.completed
        resumed = run_serve(config, state_dir=killed, resume=True)
        assert resumed.completed
        assert resumed.resumed_from is not None
        assert stats_dict(resumed) == stats_dict(clean)
        assert resumed.generation == clean.generation

    def test_sigterm_style_stop_flushes_snapshot(self, tmp_path):
        config = small_config()
        clean = run_serve(config, state_dir=tmp_path / "clean")
        # "term" flushes the final boundary snapshot on interrupt, so the
        # resume continues from the last *finished* epoch.
        killed = tmp_path / "killed"
        run_serve(config, state_dir=killed, stop_after=30, stop_mode="term")
        resumed = run_serve(config, state_dir=killed, resume=True)
        assert resumed.completed
        assert stats_dict(resumed) == stats_dict(clean)

    def test_resume_without_journal_starts_fresh(self, tmp_path):
        config = small_config()
        report = run_serve(config, state_dir=tmp_path, resume=True)
        assert report.completed
        assert report.resumed_from is None

    def test_metrics_publish_once_per_session(self):
        config = small_config()
        with obs.collecting() as registry:
            report = run_serve(config)
        counters = registry.snapshot().counters
        assert counters["serve.requests"] == report.stats.requests == 48
        assert counters["serve.swaps"] == report.stats.swaps
        assert counters["serve.snapshots"] == report.stats.snapshots


class TestMigration:
    def _allocator(self):
        class _NeverMatch:
            def match(self, state):
                return None

        space = AddressSpace(0)
        allocator = GroupAllocator(
            space,
            SizeClassAllocator(space),
            _NeverMatch(),
            GroupStateVector(),
            chunk_size=1 << 12,
            slab_size=1 << 16,
        )
        return allocator

    def test_migrate_moves_regions_and_forwards(self):
        allocator = self._allocator()
        old = [allocator.place_region(1, 64) for _ in range(5)]
        report = allocator.migrate_groups({1: 2}.get)
        assert not report.aborted
        assert report.moved_regions == 5
        assert report.moved_bytes == 5 * 64
        for addr in old:
            new_addr = report.forwarding[addr]
            assert allocator.group_of(new_addr) == 2
            assert allocator.size_of(new_addr) == 64
        assert validate_allocator(allocator) == []
        assert allocator.migrated_regions == 5
        assert allocator.migrated_bytes == 5 * 64

    def test_unmapped_groups_stay_in_place(self):
        allocator = self._allocator()
        keep = allocator.place_region(3, 48)
        move = allocator.place_region(1, 48)
        report = allocator.migrate_groups({1: 2}.get)
        assert keep not in report.forwarding
        assert allocator.group_of(keep) == 3
        assert move in report.forwarding
        assert validate_allocator(allocator) == []

    def test_abort_leaves_heap_untouched(self):
        allocator = self._allocator()
        old = [allocator.place_region(1, 64) for _ in range(5)]
        before_live = allocator.grouped_live_bytes
        report = allocator.migrate_groups({1: 2}.get, should_abort=lambda step: step == 2)
        assert report.aborted
        assert report.forwarding == {}
        assert report.moved_regions == 0
        for addr in old:
            assert allocator.group_of(addr) == 1
            assert allocator.size_of(addr) == 64
        assert allocator.grouped_live_bytes == before_live
        assert allocator.migrated_regions == 0
        assert validate_allocator(allocator) == []

    def test_identity_mapping_is_a_no_op(self):
        allocator = self._allocator()
        addr = allocator.place_region(1, 64)
        report = allocator.migrate_groups({1: 1}.get)
        assert report.moved_regions == 0
        assert allocator.group_of(addr) == 1


class TestDrift:
    def test_mix_flip_triggers_drift_events(self):
        config = small_config(
            phases=(
                MixPhase(0, (("health", 1.0),)),
                MixPhase(24, (("ft", 1.0),)),
            ),
            drift_threshold=0.2,
            drift_hysteresis=1,
            regroup_every=100,  # only drift can trigger a regroup
        )
        report = run_serve(config)
        assert report.completed
        assert report.stats.drift_events >= 1
        assert report.stats.regroup_attempts >= 1


class TestSnapshotStore:
    def test_corrupted_tail_falls_back_to_previous(self, tmp_path):
        config = small_config()
        run_serve(config, state_dir=tmp_path)
        store = serve_journal(tmp_path, config)
        intact = store.load()
        assert intact is not None

        # Append one more snapshot under a plan that always corrupts it:
        # load() must fall back to the previously intact record.
        always = FaultPlan(seed=1, serve_snapshot_corrupt_rate=1.0)
        damaged = dataclasses.replace(intact, next_epoch=intact.next_epoch + 7)
        store.write(damaged, always)
        recovered = store.load()
        assert recovered is not None
        assert recovered.next_epoch == intact.next_epoch

    def test_fully_damaged_journal_degrades_to_fresh_start(self, tmp_path):
        config = small_config()
        store = serve_journal(tmp_path, config)
        store.journal.path.parent.mkdir(parents=True, exist_ok=True)
        store.journal.path.write_bytes(b"not a journal at all")
        report = run_serve(config, state_dir=tmp_path, resume=True)
        assert report.completed
        assert report.resumed_from is None


@pytest.mark.chaos
class TestServeDrill:
    def test_forced_rollback_keeps_incumbent(self):
        plan = FaultPlan(seed=1, serve_canary_flip_rate=1.0)
        report = run_serve(small_config(), plan=plan)
        assert report.completed
        assert report.stats.swaps == 0
        assert report.stats.rollbacks >= 1
        assert report.generation == 0  # never left the incumbent table
        assert report.stats.sanitize_findings == 0

    def test_full_drill_degrades_but_serves_everything(self, tmp_path):
        plan = drill_plan(seed=7)
        report = run_serve(small_config(), state_dir=tmp_path, plan=plan)
        assert report.completed
        assert report.stats.requests == 48
        assert report.stats.sanitize_findings == 0
        assert report.stats.sanitize_checks >= report.stats.epochs
        # Something actually went wrong and was absorbed.
        degradations = (
            report.stats.rollbacks
            + report.stats.swap_aborts
            + report.stats.regroup_stalls
        )
        assert degradations >= 1

    def test_drill_is_deterministic(self):
        plan = drill_plan(seed=7)
        first = run_serve(small_config(), plan=plan)
        second = run_serve(small_config(), plan=plan)
        assert stats_dict(first) == stats_dict(second)

    def test_mid_migration_flip_aborts_swap(self):
        # A swap-flip-only plan: migration aborts mid-copy, the incumbent
        # layout survives, and the session still completes cleanly.
        plan = FaultPlan(seed=3, serve_swap_flip_rate=1.0)
        report = run_serve(small_config(), plan=plan)
        assert report.completed
        assert report.stats.sanitize_findings == 0
        # Every migration with at least one planned move aborts at step 0
        # (a zero-move swap never consults the hook and may still commit),
        # so nothing ever actually relocates.
        assert report.stats.swap_aborts >= 1
        assert report.stats.migrated_regions == 0

    def test_drill_resume_matches_uninterrupted(self, tmp_path):
        plan = drill_plan(seed=7)
        clean = run_serve(small_config(), state_dir=tmp_path / "clean", plan=plan)
        run_serve(
            small_config(),
            state_dir=tmp_path / "killed",
            plan=plan,
            stop_after=20,
            stop_mode="kill",
        )
        resumed = run_serve(
            small_config(), state_dir=tmp_path / "killed", resume=True, plan=plan
        )
        assert resumed.completed
        assert stats_dict(resumed) == stats_dict(clean)
