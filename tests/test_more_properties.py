"""Additional property tests: identification, graph filters, streams."""

from hypothesis import given, settings, strategies as st

from repro.core import Group, monitored_sites, synthesise_selectors
from repro.hds import StreamParams, extract_hot_streams
from repro.profiling import AffinityGraph, ContextTable


@st.composite
def context_worlds(draw):
    """Random (chains, grouping) worlds for selector synthesis."""
    n_sites = draw(st.integers(2, 10))
    sites = [0x1000 + 16 * i for i in range(n_sites)]
    n_contexts = draw(st.integers(1, 8))
    chains = []
    for _ in range(n_contexts):
        length = draw(st.integers(1, 4))
        chain = tuple(
            sites[draw(st.integers(0, n_sites - 1))] for _ in range(length)
        )
        chains.append(chain)
    table = ContextTable()
    cids = [table.intern(chain) for chain in chains]
    # Partition a random subset of contexts into 1-2 groups.
    assignment = {}
    groups = []
    n_groups = draw(st.integers(1, 2))
    for gid in range(n_groups):
        members = {
            cid
            for cid in set(cids)
            if cid not in assignment and draw(st.booleans())
        }
        if not members:
            continue
        for cid in members:
            assignment[cid] = gid
        groups.append(Group(gid, frozenset(members), 10.0, draw(st.integers(1, 100))))
    context_group = {cid: assignment.get(cid) for cid in set(cids)}
    return table, groups, context_group


class TestIdentificationProperties:
    @given(context_worlds())
    @settings(max_examples=150, deadline=None)
    def test_selectors_match_their_members(self, world):
        table, groups, context_group = world
        result = synthesise_selectors(groups, table, context_group)
        by_gid = {s.gid: s for s in result.selectors}
        for group in groups:
            selector = by_gid[group.gid]
            if not selector.conjunctions:
                continue  # degenerate member chains were dropped
            for cid in group.members:
                chain = table.chain(cid)
                if chain:
                    assert selector.matches_chain(chain)

    @given(context_worlds())
    @settings(max_examples=100, deadline=None)
    def test_monitored_sites_only_from_member_chains(self, world):
        table, groups, context_group = world
        result = synthesise_selectors(groups, table, context_group)
        member_sites = set()
        for group in groups:
            for cid in group.members:
                member_sites |= set(table.chain(cid))
        assert monitored_sites(result.selectors) <= member_sites

    @given(context_worlds())
    @settings(max_examples=100, deadline=None)
    def test_zero_residual_implies_no_false_positives(self, world):
        table, groups, context_group = world
        result = synthesise_selectors(groups, table, context_group)
        processed = []
        ordered = sorted(groups, key=lambda g: (-g.accesses, g.gid))
        for group in ordered:
            processed.append(group.gid)
            if result.residual_conflicts[group.gid] != 0:
                continue
            selector = next(s for s in result.selectors if s.gid == group.gid)
            for cid, gid in context_group.items():
                if gid in processed:
                    continue  # earlier groups are excluded by priority order
                chain = table.chain(cid)
                if chain:
                    assert not selector.matches_chain(chain)


class TestGraphFilterProperties:
    @st.composite
    @staticmethod
    def graphs(draw):
        g = AffinityGraph()
        n = draw(st.integers(1, 10))
        for node in range(n):
            g.add_access(node, draw(st.integers(1, 1000)))
        for _ in range(draw(st.integers(0, 15))):
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 1))
            g.add_edge_weight(a, b, draw(st.floats(0.1, 50.0)))
        return g

    @given(graphs(), st.floats(0.05, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_coverage_filter_keeps_hottest_prefix(self, g, coverage):
        kept = g.filtered_by_coverage(coverage).nodes
        if not kept:
            return
        threshold = min(g.accesses_of(n) for n in kept)
        for node in g.nodes - kept:
            assert g.accesses_of(node) <= threshold

    @given(graphs())
    @settings(max_examples=80, deadline=None)
    def test_coverage_monotone(self, g):
        low = g.filtered_by_coverage(0.4).nodes
        high = g.filtered_by_coverage(0.9).nodes
        assert low <= high

    @given(graphs(), st.floats(0.0, 60.0))
    @settings(max_examples=80, deadline=None)
    def test_min_weight_filter_sound(self, g, threshold):
        filtered = g.filtered_by_min_weight(threshold)
        assert all(w >= threshold for w in filtered.edges.values())
        assert filtered.nodes == g.nodes


class TestStreamProperties:
    @given(st.lists(st.integers(0, 12), min_size=0, max_size=250))
    @settings(max_examples=100, deadline=None)
    def test_selected_elements_come_from_trace(self, trace):
        analysis = extract_hot_streams(trace)
        universe = set(trace)
        for stream in analysis.streams:
            assert set(stream.elements) <= universe

    @given(st.lists(st.integers(0, 6), min_size=0, max_size=250))
    @settings(max_examples=100, deadline=None)
    def test_stream_lengths_bounded(self, trace):
        params = StreamParams(min_elements=2, max_elements=7)
        analysis = extract_hot_streams(trace, params)
        for stream in analysis.streams:
            assert 2 <= len(stream.elements) <= 7
            assert stream.frequency >= 1

    @given(st.lists(st.integers(0, 6), min_size=0, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_coverage_achieved_bounded(self, trace):
        analysis = extract_hot_streams(trace)
        assert 0.0 <= analysis.coverage_achieved <= 1.0
