"""Unit + property tests for score, merge benefit, and Figure 6 grouping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Group, GroupingParams, assign_groups, group_contexts
from repro.core.score import internal_weight, merge_benefit, score
from repro.profiling import AffinityGraph


def graph_from(edges, accesses=None):
    g = AffinityGraph()
    for (a, b), w in edges.items():
        g.add_edge_weight(a, b, w)
    nodes = {n for pair in edges for n in pair}
    for node in nodes:
        g.add_access(node, (accesses or {}).get(node, 10))
    return g


class TestScore:
    def test_empty_graph_scores_zero(self):
        assert score(AffinityGraph(), []) == 0.0

    def test_single_node_without_loop_scores_zero(self):
        g = graph_from({(0, 1): 4.0})
        assert score(g, [0]) == 0.0

    def test_single_node_with_loop(self):
        g = graph_from({(0, 0): 6.0})
        assert score(g, [0]) == 6.0  # weight / (1 loop + 0 pairs)

    def test_pair_without_loops_is_weighted_density(self):
        g = graph_from({(0, 1): 8.0})
        assert score(g, [0, 1]) == 8.0  # 8 / (0 + 1)

    def test_loops_extend_denominator_only_when_present(self):
        g = graph_from({(0, 1): 6.0, (0, 0): 3.0})
        # weights 9, denominator = 1 loop + 1 pair
        assert score(g, [0, 1]) == pytest.approx(4.5)

    def test_duplicate_nodes_deduped(self):
        g = graph_from({(0, 1): 8.0})
        assert score(g, [0, 1, 0]) == score(g, [0, 1])

    def test_external_edges_excluded(self):
        g = graph_from({(0, 1): 8.0, (1, 2): 100.0})
        assert score(g, [0, 1]) == 8.0


class TestMergeBenefit:
    def test_positive_when_strongly_connected(self):
        g = graph_from({(0, 1): 10.0})
        assert merge_benefit(g, [0], 1) > 0

    def test_negative_when_candidate_unconnected(self):
        g = graph_from({(0, 0): 10.0, (1, 2): 10.0})
        assert merge_benefit(g, [0], 1) < 0

    def test_tolerance_allows_slightly_worse_merges(self):
        # Combined score fractionally below the separated score.
        g = graph_from({(0, 0): 10.0, (1, 1): 10.0, (0, 1): 9.7})
        # s({0}) = 10; s({0,1}) = 29.7/3 = 9.9 — merge only passes with slack.
        assert merge_benefit(g, [0], 1, tolerance=0.0) < 0
        assert merge_benefit(g, [0], 1, tolerance=0.05) > 0

    def test_invalid_tolerance(self):
        g = graph_from({(0, 1): 1.0})
        with pytest.raises(ValueError):
            merge_benefit(g, [0], 1, tolerance=1.0)


class TestInternalWeight:
    def test_counts_loops_and_edges(self):
        g = graph_from({(0, 1): 5.0, (0, 0): 2.0, (1, 2): 7.0})
        assert internal_weight(g, [0, 1]) == 7.0


class TestGroupContexts:
    def test_strong_pair_grouped(self):
        g = graph_from({(0, 1): 100.0, (0, 0): 20.0, (1, 1): 20.0})
        groups = group_contexts(g, GroupingParams(group_threshold=0.0))
        assert any(set(group.members) == {0, 1} for group in groups)

    def test_weak_edges_thresholded(self):
        g = graph_from({(0, 1): 1.0})
        groups = group_contexts(g, GroupingParams(min_weight=2.0, group_threshold=0.0))
        assert groups == []

    def test_group_threshold_rejects_light_groups(self):
        g = graph_from({(0, 1): 4.0}, accesses={0: 100_000, 1: 100_000})
        groups = group_contexts(g, GroupingParams(min_weight=0.0, group_threshold=0.5))
        assert groups == []

    def test_max_group_members_cap(self):
        edges = {}
        nodes = range(6)
        for a in nodes:
            for b in nodes:
                if a < b:
                    edges[(a, b)] = 50.0
        g = graph_from(edges)
        groups = group_contexts(
            g, GroupingParams(max_group_members=3, group_threshold=0.0)
        )
        assert all(len(group) <= 3 for group in groups)

    def test_groups_are_disjoint(self):
        edges = {(0, 1): 50.0, (2, 3): 40.0, (1, 2): 5.0}
        groups = group_contexts(graph_from(edges), GroupingParams(group_threshold=0.0))
        seen = set()
        for group in groups:
            assert not (group.members & seen)
            seen |= group.members

    def test_unconnected_cold_node_excluded(self):
        g = graph_from({(0, 1): 100.0})
        g.add_access(7, 1)  # isolated node
        groups = group_contexts(g, GroupingParams(group_threshold=0.0))
        assert all(7 not in group for group in groups)

    def test_seed_is_hotter_endpoint(self):
        g = graph_from({(0, 1): 100.0}, accesses={0: 5, 1: 500})
        # Nodes poorly connected otherwise; group grows from node 1.
        groups = group_contexts(g, GroupingParams(group_threshold=0.0))
        assert 1 in groups[0].members

    def test_group_metadata(self):
        g = graph_from({(0, 1): 100.0, (0, 0): 10.0}, accesses={0: 30, 1: 40})
        groups = group_contexts(g, GroupingParams(group_threshold=0.0))
        group = groups[0]
        assert group.weight == internal_weight(g, group.members)
        assert group.accesses == sum(g.accesses_of(c) for c in group.members)

    def test_empty_graph(self):
        assert group_contexts(AffinityGraph()) == []

    def test_deterministic(self):
        edges = {(0, 1): 50.0, (1, 2): 50.0, (3, 4): 50.0}
        g1, g2 = graph_from(edges), graph_from(edges)
        params = GroupingParams(group_threshold=0.0)
        assert group_contexts(g1, params) == group_contexts(g2, params)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GroupingParams(max_group_members=0)
        with pytest.raises(ValueError):
            GroupingParams(merge_tolerance=1.0)
        with pytest.raises(ValueError):
            GroupingParams(group_threshold=-0.1)


class TestAssignGroups:
    def test_mapping(self):
        groups = [
            Group(0, frozenset({1, 2}), 10.0, 5),
            Group(1, frozenset({3}), 4.0, 2),
        ]
        assert assign_groups(groups) == {1: 0, 2: 0, 3: 1}


@st.composite
def random_graphs(draw):
    n = draw(st.integers(2, 8))
    g = AffinityGraph()
    for node in range(n):
        g.add_access(node, draw(st.integers(1, 100)))
    n_edges = draw(st.integers(1, 12))
    for _ in range(n_edges):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1))
        g.add_edge_weight(a, b, draw(st.floats(0.5, 100.0)))
    return g


class TestGroupingProperties:
    @given(random_graphs())
    @settings(max_examples=100, deadline=None)
    def test_groups_always_disjoint_and_within_graph(self, g):
        groups = group_contexts(g, GroupingParams(group_threshold=0.0, min_weight=0.0))
        seen = set()
        for group in groups:
            assert group.members <= g.nodes
            assert not (group.members & seen)
            seen |= group.members
            assert 1 <= len(group) <= GroupingParams().max_group_members

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_accepted_groups_meet_threshold(self, g):
        params = GroupingParams(group_threshold=0.01, min_weight=0.0)
        for group in group_contexts(g, params):
            assert internal_weight(g, group.members) >= g.total_accesses * 0.01

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_score_never_negative(self, g):
        for group in group_contexts(g, GroupingParams(group_threshold=0.0, min_weight=0.0)):
            assert score(g, group.members) >= 0.0
