"""Unit tests for the on-disk artifact cache and its content keys."""

import pickle

import pytest

from repro.core.artifact_cache import ArtifactCache, artifact_key, _params_to_jsonable
from repro.core.pipeline import HaloParams
from repro.hds.pipeline import HdsParams


class TestArtifactKey:
    def test_deterministic(self):
        a = artifact_key("health", "test", HaloParams(), HdsParams())
        b = artifact_key("health", "test", HaloParams(), HdsParams())
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_workload_and_scale_differentiate(self):
        base = artifact_key("health", "test", HaloParams())
        assert artifact_key("ft", "test", HaloParams()) != base
        assert artifact_key("health", "train", HaloParams()) != base

    def test_params_differentiate(self):
        base = artifact_key("health", "test", HaloParams(), HdsParams())
        changed = artifact_key(
            "health", "test", HaloParams().with_affinity_distance(256), HdsParams()
        )
        assert changed != base

    def test_version_differentiates(self):
        assert artifact_key("health", "test", version="1.0.0") != artifact_key(
            "health", "test", version="2.0.0"
        )

    def test_extra_kwargs_differentiate(self):
        assert artifact_key("health", "test", variant="a") != artifact_key(
            "health", "test", variant="b"
        )

    def test_default_version_is_package_version(self):
        from repro import __version__

        assert artifact_key("health", "test") == artifact_key(
            "health", "test", version=__version__
        )

    def test_unhashable_params_rejected(self):
        with pytest.raises(TypeError):
            artifact_key("health", "test", halo_params=object())

    def test_jsonable_canonicalises_containers(self):
        assert _params_to_jsonable({"b": 2, "a": (1, [2])}) == {"a": [1, [2]], "b": 2}
        assert _params_to_jsonable(None) is None


class TestArtifactCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        key = artifact_key("health", "test")
        assert cache.get(key) is None
        assert not cache.contains(key)
        cache.put(key, {"payload": [1, 2, 3]})
        assert cache.contains(key)
        assert cache.get(key) == {"payload": [1, 2, 3]}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_creates_root_lazily(self, tmp_path):
        root = tmp_path / "nested" / "cache"
        cache = ArtifactCache(root)
        assert cache.get("no-such-key") is None
        assert not root.exists()  # a pure read never creates the directory
        cache.put("k", 1)
        assert root.is_dir()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("k", [1, 2])
        cache.path_for("k").write_bytes(b"not a pickle")
        assert cache.get("k") is None
        # The entry can be rewritten and read back.
        cache.put("k", [3])
        assert cache.get("k") == [3]

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("k", list(range(100)))
        blob = cache.path_for("k").read_bytes()
        cache.path_for("k").write_bytes(blob[: len(blob) // 2])
        assert cache.get("k") is None

    def test_put_is_atomic_no_tmp_residue(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("k", "value")
        leftovers = [p for p in cache.root.iterdir() if p.suffix != ".pkl"]
        assert leftovers == []

    def test_unpicklable_value_leaves_no_partial_entry(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises((pickle.PicklingError, TypeError, AttributeError)):
            cache.put("k", lambda: None)
        assert not cache.contains("k")
        leftovers = list(cache.root.iterdir())
        assert leftovers == []

    def test_clear_removes_entries(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert cache.get("a") is None
        assert cache.clear() == 0


class TestFaultInjectedRecovery:
    """Regression: injector-corrupted entries are misses and get rewritten."""

    def _warm(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        key = artifact_key("health", "test", HaloParams(), HdsParams())
        cache.put(key, {"payload": list(range(100))})
        return cache, key

    @pytest.mark.parametrize("mode", ["bitflip", "truncate"])
    def test_injected_corruption_is_miss_then_rewrite(self, tmp_path, mode):
        from repro.faults import FaultPlan, inject_into_path

        cache, key = self._warm(tmp_path)
        damaged = inject_into_path(cache.root, FaultPlan(seed=1, corrupt_mode=mode))
        assert damaged == [cache.path_for(key)]
        # Corruption degrades to a miss, never to an exception or garbage.
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        # The producer path rewrites the entry and the cache recovers fully.
        cache.put(key, {"payload": list(range(100))})
        assert cache.get(key) == {"payload": list(range(100))}

    def test_zero_byte_entry_is_miss(self, tmp_path):
        cache, key = self._warm(tmp_path)
        cache.path_for(key).write_bytes(b"")
        assert cache.get(key) is None
