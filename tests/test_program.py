"""Unit tests for the static program model."""

import pytest

from repro.machine import Program, ProgramBuilder, ProgramError
from repro.machine.program import (
    FUNCTION_STRIDE,
    LIBRARY_BASE,
    SITE_STRIDE,
    TEXT_BASE,
)


class TestProgramBuilder:
    def test_functions_get_distinct_addresses(self):
        b = ProgramBuilder("p")
        f1 = b.function("main")
        f2 = b.function("other")
        assert f1.addr == TEXT_BASE
        assert f2.addr == TEXT_BASE + FUNCTION_STRIDE

    def test_library_functions_live_in_library_segment(self):
        b = ProgramBuilder("p")
        fn = b.function("malloc", in_main_binary=False)
        assert fn.addr >= LIBRARY_BASE
        assert not fn.in_main_binary

    def test_malloc_is_traceable_by_default(self):
        b = ProgramBuilder("p")
        fn = b.function("malloc", in_main_binary=False)
        assert fn.traceable

    def test_main_binary_function_is_not_traceable_by_default(self):
        b = ProgramBuilder("p")
        fn = b.function("malloc")  # statically linked malloc
        assert not fn.traceable

    def test_redefining_function_returns_same_object(self):
        b = ProgramBuilder("p")
        assert b.function("main") is b.function("main")

    def test_call_sites_within_caller(self):
        b = ProgramBuilder("p")
        s1 = b.call_site("main", "f")
        s2 = b.call_site("main", "g")
        assert s1.addr == TEXT_BASE + SITE_STRIDE
        assert s2.addr == TEXT_BASE + 2 * SITE_STRIDE
        assert s1.caller == "main" and s1.callee == "f"

    def test_call_site_implicitly_defines_functions(self):
        b = ProgramBuilder("p")
        b.call_site("main", "f")
        program = b.build()
        assert program.function("f").in_main_binary

    def test_build_requires_entry(self):
        b = ProgramBuilder("p")
        program = b.build()  # entry created implicitly
        assert program.entry == "main"

    def test_pie_flag_propagates(self):
        assert ProgramBuilder("p", pie=True).build().pie


class TestProgram:
    def test_site_lookup(self):
        b = ProgramBuilder("p")
        site = b.call_site("main", "f")
        program = b.build()
        assert program.site(site.addr) is site

    def test_unknown_site_raises(self):
        program = ProgramBuilder("p").build()
        with pytest.raises(ProgramError):
            program.site(0xDEAD)

    def test_unknown_function_raises(self):
        program = ProgramBuilder("p").build()
        with pytest.raises(ProgramError):
            program.function("missing")

    def test_unknown_entry_raises(self):
        with pytest.raises(ProgramError):
            Program("p", {}, {}, entry="main")

    def test_sites_in(self):
        b = ProgramBuilder("p")
        s1 = b.call_site("main", "f")
        s2 = b.call_site("main", "g")
        b.call_site("f", "g")
        program = b.build()
        assert set(s.addr for s in program.sites_in("main")) == {s1.addr, s2.addr}

    def test_contains_and_iter(self):
        b = ProgramBuilder("p")
        site = b.call_site("main", "f")
        program = b.build()
        assert site.addr in program
        assert site in list(program)

    def test_describe_site_falls_back_to_hex(self):
        program = ProgramBuilder("p").build()
        assert program.describe_site(0x1234) == "0x1234"

    def test_describe_site_includes_label(self):
        b = ProgramBuilder("p")
        site = b.call_site("main", "f", label="hot loop")
        program = b.build()
        assert "hot loop" in program.describe_site(site.addr)
