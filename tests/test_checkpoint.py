"""Checkpoint journal: durable appends, corruption-tolerant reads."""

import zlib

from repro.harness.checkpoint import RECORD_MAGIC, CheckpointJournal, journal_for


class TestCheckpointJournal:
    def test_append_load_round_trip(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.journal")
        journal.append("a", 1)
        journal.append("b", {"nested": [1, 2]})
        assert journal.load() == {"a": 1, "b": {"nested": [1, 2]}}
        assert len(journal) == 2

    def test_missing_file_loads_empty(self, tmp_path):
        assert CheckpointJournal(tmp_path / "none.journal").load() == {}

    def test_later_records_win(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.journal")
        journal.append("cell", "old")
        journal.append("cell", "new")
        assert journal.load() == {"cell": "new"}

    def test_parent_directories_created(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "deep" / "er" / "run.journal")
        journal.append("a", 1)
        assert journal.load() == {"a": 1}

    def test_torn_tail_ignored(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.journal")
        journal.append("kept", 1)
        journal.append("torn", 2)
        raw = journal.path.read_bytes()
        journal.path.write_bytes(raw[:-3])  # the crash mid-append shape
        assert journal.load() == {"kept": 1}

    def test_bitflipped_record_stops_reading(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.journal")
        journal.append("kept", 1)
        first_len = journal.path.stat().st_size
        journal.append("flipped", 2)
        journal.append("after", 3)
        raw = bytearray(journal.path.read_bytes())
        raw[first_len + len(RECORD_MAGIC) + 8 + 2] ^= 0xFF  # inside payload 2
        journal.path.write_bytes(bytes(raw))
        # Damage invalidates that record and everything after it; the
        # cells simply re-run.
        assert journal.load() == {"kept": 1}

    def test_foreign_file_rejected_gracefully(self, tmp_path):
        path = tmp_path / "not-a-journal"
        path.write_bytes(b"something else entirely, long enough to scan")
        assert CheckpointJournal(path).load() == {}

    def test_clear_removes_file(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.journal")
        journal.append("a", 1)
        journal.clear()
        assert not journal.path.exists()
        journal.clear()  # idempotent
        assert journal.load() == {}

    def test_record_framing_crc(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.journal")
        journal.append("a", 1)
        raw = journal.path.read_bytes()
        assert raw.startswith(RECORD_MAGIC)
        length = int.from_bytes(raw[8:12], "little")
        crc = int.from_bytes(raw[12:16], "little")
        payload = raw[16:16 + length]
        assert zlib.crc32(payload) == crc


class TestJournalFor:
    def test_beside_cache_dir(self, tmp_path):
        journal = journal_for(tmp_path / "cache", "figure13")
        assert journal.path == tmp_path / "cache" / "checkpoint-figure13.journal"

    def test_working_directory_without_cache(self):
        journal = journal_for(None, "sweep")
        assert journal.path.name == "checkpoint-sweep.journal"
