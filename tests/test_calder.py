"""Tests for the Calder et al. name-based placement replication (§2.2.3)."""


from repro.allocators import AddressSpace
from repro.calder import (
    CalderParams,
    NameMatcher,
    NameTable,
    make_runtime,
    name_of,
    profile_workload,
)
from repro.harness.runner import measure_baseline, measure_calder
from repro.machine import Machine, ProgramBuilder
from repro.allocators import SizeClassAllocator
from repro.workloads import get_workload


class TestNaming:
    def _stack(self, *addrs):
        b = ProgramBuilder("naming")
        sites = []
        for index, _ in enumerate(addrs):
            sites.append(b.call_site("main", f"f{index}"))
        return sites

    def test_xor_of_last_four(self):
        sites = self._stack(1, 2, 3, 4, 5)
        expected = 0
        for site in sites[-4:]:
            expected ^= site.addr
        assert name_of(sites) == expected

    def test_shallow_stack_uses_all_frames(self):
        sites = self._stack(1, 2)
        assert name_of(sites) == sites[0].addr ^ sites[1].addr

    def test_empty_stack(self):
        assert name_of([]) == 0

    def test_depth_parameter(self):
        sites = self._stack(1, 2, 3)
        assert name_of(sites, depth=1) == sites[-1].addr

    def test_frames_above_window_invisible(self):
        """The scheme's defining blind spot: deep prefixes don't matter."""
        sites = self._stack(1, 2, 3, 4, 5, 6)
        # Two stacks sharing the innermost four sites collide.
        assert name_of(sites) == name_of(sites[-4:])
        assert name_of(sites[1:]) == name_of(sites)


class TestNameTable:
    def test_intern_roundtrip(self):
        table = NameTable()
        nid = table.intern(0xABCD)
        assert table.name(nid) == 0xABCD
        assert table.intern(0xABCD) == nid
        assert table.lookup(0xABCD) == nid
        assert table.lookup(0x9999) is None
        assert len(table) == 1


class TestCalderOnWorkloads:
    def test_identifies_health_like_halo(self):
        """Shallow, distinct call paths: names separate hot from cold."""
        workload = get_workload("health")
        artifacts = profile_workload(workload, CalderParams())
        assert artifacts.groups
        runtime = make_runtime(artifacts, AddressSpace(1))
        machine = Machine(workload.program, runtime.allocator)
        runtime.attach(machine)
        workload.run(machine, "test")
        assert runtime.allocator.grouped_allocs > 0

    def test_blind_to_xalanc_deep_contexts(self):
        """xalanc's allocation paths differ only above the 4-frame window."""
        workload = get_workload("xalanc")
        artifacts = profile_workload(workload, CalderParams())
        # Every small allocation shares the deep funnel suffix, so all
        # contexts collapse onto one name: no useful groups can separate
        # DOM nodes from strings.
        hot_names = {
            artifacts.names.name(nid)
            for group in artifacts.groups
            for nid in group.members
        }
        assert len(hot_names) <= 1

    def test_measure_calder_runs(self):
        workload = get_workload("health")
        artifacts = profile_workload(workload, CalderParams())
        base = measure_baseline(workload, scale="test", seed=1)
        calder = measure_calder(workload, artifacts, scale="test", seed=1)
        assert calder.config == "calder"
        assert calder.cycles > 0
        # On health the name window suffices: misses drop.
        assert calder.cache.l1_misses < base.cache.l1_misses


class TestNameMatcher:
    def test_unattached_matches_nothing(self):
        assert NameMatcher({0: 1}, 4).match(0) is None

    def test_matches_current_stack_name(self, demo):
        machine = Machine(demo.program, SizeClassAllocator(AddressSpace(0)))
        name = demo.main_a.addr ^ demo.a_malloc.addr
        matcher = NameMatcher({name: 7}, 4)
        matcher.attach(machine)
        with machine.call(demo.main_a):
            assert matcher.match(0) is None
            with machine.call(demo.a_malloc):
                assert matcher.match(0) == 7
