"""Tests for HaloParams and the offline/online pipeline wiring."""

import pytest

from repro.allocators import AddressSpace, GroupAllocator, ShardedGroupAllocator
from repro.core import (
    HaloParams,
    make_runtime,
    optimise_profile,
    optimise_workload,
    profile_workload,
)
from repro.workloads import get_workload


class TestHaloParams:
    def test_paper_defaults(self):
        params = HaloParams()
        assert params.affinity.distance == 128
        assert params.chunk_size == 1 << 20
        assert params.max_spare_chunks == 1
        assert params.max_grouped_size == 4096
        assert params.max_groups is None

    def test_with_affinity_distance_is_copy(self):
        base = HaloParams()
        derived = base.with_affinity_distance(64)
        assert base.affinity.distance == 128
        assert derived.affinity.distance == 64
        assert derived.chunk_size == base.chunk_size


@pytest.fixture(scope="module")
def ft_artifacts():
    workload = get_workload("ft")
    return workload, optimise_workload(workload, HaloParams())


class TestOptimise:
    def test_one_shot_pipeline(self, ft_artifacts):
        _, artifacts = ft_artifacts
        assert artifacts.groups
        assert artifacts.identification.selectors
        assert artifacts.plan.bits_used >= 1

    def test_context_assignment_covers_groups(self, ft_artifacts):
        _, artifacts = ft_artifacts
        assignment = artifacts.context_assignment
        for group in artifacts.groups:
            for cid in group.members:
                assert assignment[cid] == group.gid

    def test_describe_groups_readable(self, ft_artifacts):
        workload, artifacts = ft_artifacts
        text = "\n".join(artifacts.describe_groups())
        assert "group 0" in text
        assert "->" in text  # symbolised call chains

    def test_max_groups_keeps_most_popular(self):
        workload = get_workload("roms")
        profile = profile_workload(workload, HaloParams(), scale="test")
        unlimited = optimise_profile(profile, HaloParams())
        limited = optimise_profile(profile, HaloParams(max_groups=1))
        assert len(limited.groups) <= 1
        if unlimited.groups and limited.groups:
            best = max(unlimited.groups, key=lambda g: g.accesses)
            assert limited.groups[0].members == best.members

    def test_selectors_only_use_instrumentable_sites(self, ft_artifacts):
        workload, artifacts = ft_artifacts
        program = workload.program
        for selector in artifacts.identification.selectors:
            for site in selector.sites:
                caller = program.sites[site].caller
                assert program.functions[caller].in_main_binary


class TestMakeRuntime:
    def test_runtime_wiring(self, ft_artifacts):
        _, artifacts = ft_artifacts
        runtime = make_runtime(artifacts, AddressSpace(0))
        assert isinstance(runtime.allocator, GroupAllocator)
        assert runtime.instrumentation == artifacts.plan.bit_for_site
        kwargs = runtime.machine_kwargs()
        assert kwargs["allocator"] is runtime.allocator
        assert kwargs["state_vector"] is runtime.state_vector

    def test_runtime_params_propagate(self):
        workload = get_workload("omnetpp")
        params = HaloParams(
            chunk_size=131072, max_spare_chunks=0, always_reuse_chunks=True
        )
        artifacts = optimise_workload(workload, params)
        runtime = make_runtime(artifacts, AddressSpace(0))
        assert runtime.allocator.chunk_size == 131072
        assert runtime.allocator.max_spare_chunks == 0
        assert runtime.allocator.always_reuse_chunks

    def test_sharded_variant_selectable(self, ft_artifacts):
        _, artifacts = ft_artifacts
        runtime = make_runtime(
            artifacts, AddressSpace(0), allocator_cls=ShardedGroupAllocator
        )
        assert isinstance(runtime.allocator, ShardedGroupAllocator)
