"""Tests for the Figure 9 DOT export."""

from repro.analysis import affinity_graph_dot, artifacts_dot
from repro.core import Group, HaloParams, optimise_workload
from repro.profiling import AffinityGraph
from repro.workloads import get_workload


def small_graph():
    g = AffinityGraph()
    g.add_access(0, 100)
    g.add_access(1, 10)
    g.add_access(2, 1)
    g.add_edge_weight(0, 1, 40.0)
    g.add_edge_weight(0, 0, 5.0)
    g.add_edge_weight(1, 2, 0.5)
    return g


class TestAffinityGraphDot:
    def test_nodes_and_edges_present(self):
        dot = affinity_graph_dot(small_graph())
        assert dot.startswith('graph "affinity" {')
        assert dot.rstrip().endswith("}")
        for node in ("n0", "n1", "n2"):
            assert node in dot
        assert "n0 -- n1" in dot

    def test_group_colouring(self):
        groups = [Group(0, frozenset({0, 1}), 40.0, 110)]
        dot = affinity_graph_dot(small_graph(), groups)
        assert dot.count("#4477aa") == 2  # both members share group 0's colour
        assert "#d9d9d9" in dot  # node 2 stays grey (ungrouped)

    def test_min_edge_weight_hides_light_edges(self):
        dot = affinity_graph_dot(small_graph(), min_edge_weight=1.0)
        assert "n1 -- n2" not in dot
        assert "n0 -- n1" in dot

    def test_self_loop_rendered(self):
        dot = affinity_graph_dot(small_graph())
        assert "n0 -- n0" in dot

    def test_empty_graph(self):
        dot = affinity_graph_dot(AffinityGraph())
        assert dot.startswith("graph")


class TestArtifactsDot:
    def test_povray_figure9(self):
        workload = get_workload("povray")
        artifacts = optimise_workload(workload, HaloParams())
        dot = artifacts_dot(artifacts)
        # Symbolised labels from the program.
        assert "pov_malloc" in dot or "create_" in dot
        # At least one coloured (grouped) node.
        assert any(colour in dot for colour in ("#4477aa", "#ee6677", "#228833"))
