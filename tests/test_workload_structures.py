"""Structural invariants of the complex workloads (beyond the shared tests)."""


from repro.allocators import AddressSpace, SizeClassAllocator
from repro.core import HaloParams, optimise_profile, profile_workload
from repro.machine import Listener, Machine
from repro.workloads import get_workload


class LivenessProbe(Listener):
    """Tracks live-object high-water mark and per-size tallies."""

    def __init__(self):
        self.live = 0
        self.peak = 0
        self.alloc_sizes = {}

    def on_alloc(self, machine, obj):
        self.live += 1
        self.peak = max(self.peak, self.live)
        self.alloc_sizes[obj.size] = self.alloc_sizes.get(obj.size, 0) + 1

    def on_free(self, machine, obj):
        self.live -= 1


def probe(name, scale="test"):
    workload = get_workload(name)
    listener = LivenessProbe()
    machine = Machine(
        workload.program, SizeClassAllocator(AddressSpace(0)), listeners=[listener]
    )
    workload.run(machine, scale)
    return workload, machine, listener


class TestOmnetppChurn:
    def test_live_window_bounded(self):
        workload, machine, listener = probe("omnetpp")
        # Churn: the in-flight window stays far below total allocations.
        assert listener.peak < machine.metrics.allocs / 2

    def test_quirks_match_artifact_appendix(self):
        workload = get_workload("omnetpp")
        assert workload.halo_overrides["chunk_size"] == 131072
        assert workload.halo_overrides["max_spare_chunks"] == 0

    def test_operator_new_is_outside_main_binary(self):
        workload = get_workload("omnetpp")
        fn = workload.program.function("operator new")
        assert not fn.in_main_binary
        assert fn.traceable


class TestLeelaPhases:
    def test_peak_liveness_is_late(self):
        """Scoring buffers must drive the total peak (Table 1's setup)."""
        workload = get_workload("leela")

        class PeakWhen(Listener):
            def __init__(self):
                self.live_bytes = 0
                self.peak = 0
                self.alloc_index = 0
                self.peak_index = 0

            def on_alloc(self, machine, obj):
                self.alloc_index += 1
                self.live_bytes += obj.size
                if self.live_bytes > self.peak:
                    self.peak = self.live_bytes
                    self.peak_index = self.alloc_index

            def on_free(self, machine, obj):
                self.live_bytes -= obj.size

        listener = PeakWhen()
        machine = Machine(
            workload.program, SizeClassAllocator(AddressSpace(0)), listeners=[listener]
        )
        workload.run(machine, "test")
        # The peak comes in the last few percent of the allocation stream.
        assert listener.peak_index > 0.95 * listener.alloc_index

    def test_roots_survive_each_game(self):
        workload, machine, listener = probe("leela")
        assert machine.objects.live_count == 0  # but nothing leaks at exit


class TestPovrayStructure:
    def test_every_small_allocation_flows_through_pov_malloc(self):
        workload = get_workload("povray")
        profile = profile_workload(workload, HaloParams(), scale="test")
        pov_site = workload.s_pov_malloc.addr
        for cid in profile.contexts:
            chain = profile.contexts.chain(cid)
            assert chain[-1] == pov_site

    def test_geometry_outlives_tokens(self):
        workload, machine, listener = probe("povray")
        # Both 48- and 64-byte classes saw thousands of allocations.
        assert listener.alloc_sizes[48] > 1000
        assert listener.alloc_sizes[64] > 1000


class TestXalancStructure:
    def test_deep_chains(self):
        """DOM-node contexts require several frames (the paper's point)."""
        workload = get_workload("xalanc")
        profile = profile_workload(workload, HaloParams(), scale="test")
        depths = [len(profile.contexts.chain(cid)) for cid in profile.graph.nodes]
        assert max(depths) >= 5

    def test_all_contexts_share_the_xmemory_funnel(self):
        workload = get_workload("xalanc")
        profile = profile_workload(workload, HaloParams(), scale="test")
        funnel = workload.s_xmem_malloc.addr
        heap_contexts = [
            cid
            for cid in profile.contexts
            if profile.contexts.chain(cid)
            and profile.contexts.chain(cid)[-1] == funnel
        ]
        assert len(heap_contexts) >= 4


class TestRomsStructure:
    def test_triples_contiguous_under_baseline(self):
        workload = get_workload("roms")
        machine = Machine(workload.program, SizeClassAllocator(AddressSpace(0)))
        workload.run(machine, "test")
        # Recreate to inspect placement mid-run instead: allocate manually.
        workload = get_workload("roms")
        machine = Machine(workload.program, SizeClassAllocator(AddressSpace(0)))
        with machine.call(workload.s_main_bounds):
            cells = []
            for site in (workload.s_c_malloc, workload.s_d_malloc, workload.s_e_malloc):
                with machine.call(site):
                    cells.append(machine.malloc(16))
        assert cells[1].addr == cells[0].addr + 16
        assert cells[2].addr == cells[1].addr + 16

    def test_halo_respects_max_groups_quirk(self):
        workload = get_workload("roms")
        from repro.harness.reproduce import halo_params_for

        params = halo_params_for(workload)
        profile = profile_workload(workload, params, scale="test")
        artifacts = optimise_profile(profile, params)
        assert len(artifacts.groups) <= 4
