"""Fault-injection framework: deterministic plans, injectors, and hooks.

The framework's contract is determinism — the same plan makes the same
decisions and damages the same bytes on every run, in every process —
because a chaos failure is only a regression test if it reproduces.
"""

import pickle
import random
import subprocess
import sys

import pytest

from repro.cli import main
from repro.faults import (
    INJECTABLE_SUFFIXES,
    FaultPlan,
    KILLED_EXIT_STATUS,
    active_fault_plan,
    bitflip_file,
    clear_fault_plan,
    fault_plan_active,
    inject_into_file,
    inject_into_path,
    install_fault_plan,
    truncate_file,
)
from pathlib import Path


class TestFaultPlanDecisions:
    def test_draw_is_deterministic_and_uniform_range(self):
        plan = FaultPlan(seed=7)
        values = [plan.draw("site", i) for i in range(64)]
        assert values == [plan.draw("site", i) for i in range(64)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_draw_depends_on_seed_site_and_key(self):
        assert FaultPlan(seed=1).draw("a", 0) != FaultPlan(seed=2).draw("a", 0)
        plan = FaultPlan(seed=1)
        assert plan.draw("a", 0) != plan.draw("b", 0)
        assert plan.draw("a", 0) != plan.draw("a", 1)

    def test_decide_respects_rate_extremes(self):
        plan = FaultPlan(seed=3)
        assert not any(plan.decide(0.0, "s", i) for i in range(32))
        assert all(plan.decide(1.0, "s", i) for i in range(32))

    def test_fail_trace_decode_keyed_by_workload(self):
        plan = FaultPlan(seed=0, trace_decode_error_rate=1.0)
        assert plan.fail_trace_decode("health")
        assert not FaultPlan(seed=0).fail_trace_decode("health")

    def test_flip_state_flips_one_bit_in_window(self):
        plan = FaultPlan(seed=5, state_flip_rate=1.0, state_flip_bits=8)
        for index in range(32):
            flipped = plan.flip_state(0, index)
            assert flipped != 0
            assert bin(flipped).count("1") == 1
            assert flipped < (1 << 8)

    def test_flip_state_noop_at_zero_rate(self):
        plan = FaultPlan(seed=5)
        assert plan.flip_state(0b1010, 0) == 0b1010

    def test_plan_is_immutable_and_picklable(self):
        plan = FaultPlan(seed=9, kill_tasks=("measure:a:b:c:0",))
        with pytest.raises(Exception):
            plan.seed = 10
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_on_worker_task_survives_past_kill_window(self):
        # attempt >= max_kill_attempts: the scheduled kill does not fire,
        # which is what lets a retried task succeed.
        plan = FaultPlan(kill_tasks=("victim",), max_kill_attempts=1)
        plan.on_worker_task("victim", attempt=1)  # must return, not exit
        plan.on_worker_task("innocent", attempt=0)

    def test_on_worker_task_kill_exits_process(self):
        # The kill is a hard os._exit, so it needs a sacrificial process.
        code = (
            "from repro.faults import FaultPlan\n"
            "FaultPlan(kill_tasks=('victim',)).on_worker_task('victim', 0)\n"
            "print('survived')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == KILLED_EXIT_STATUS
        assert "survived" not in proc.stdout


class TestPlanRegistration:
    def test_install_and_clear(self):
        plan = FaultPlan(seed=1)
        install_fault_plan(plan)
        try:
            assert active_fault_plan() is plan
        finally:
            clear_fault_plan()
        assert active_fault_plan() is None

    def test_context_manager_restores_previous(self):
        outer, inner = FaultPlan(seed=1), FaultPlan(seed=2)
        with fault_plan_active(outer):
            with fault_plan_active(inner):
                assert active_fault_plan() is inner
            assert active_fault_plan() is outer
        assert active_fault_plan() is None

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with fault_plan_active(FaultPlan(seed=1)):
                raise RuntimeError("boom")
        assert active_fault_plan() is None


class TestInjectors:
    def _file(self, tmp_path, name="victim.pkl", size=4096) -> Path:
        path = tmp_path / name
        path.write_bytes(bytes(range(256)) * (size // 256))
        return path

    def test_truncate_keeps_strict_prefix(self, tmp_path):
        path = self._file(tmp_path)
        original = path.read_bytes()
        kept = truncate_file(path, random.Random(0))
        assert kept < len(original)
        assert path.read_bytes() == original[:kept]

    def test_bitflip_changes_content_deterministically(self, tmp_path):
        a = self._file(tmp_path, "a.pkl")
        original = a.read_bytes()
        offsets = bitflip_file(a, random.Random(42))
        assert a.read_bytes() != original
        # Same RNG stream => same damage.
        b = self._file(tmp_path, "b.pkl")
        assert bitflip_file(b, random.Random(42)) == offsets
        assert a.read_bytes() == b.read_bytes()

    def test_bitflip_empty_file_is_noop(self, tmp_path):
        path = tmp_path / "empty.pkl"
        path.write_bytes(b"")
        assert bitflip_file(path, random.Random(0)) == []

    def test_inject_into_file_is_plan_deterministic(self, tmp_path):
        plan = FaultPlan(seed=11, corrupt_mode="bitflip")
        (tmp_path / "run1").mkdir()
        (tmp_path / "run2").mkdir()
        a = self._file(tmp_path / "run1", "same-name.pkl")
        b = self._file(tmp_path / "run2", "same-name.pkl")
        inject_into_file(a, plan)
        inject_into_file(b, plan)
        # Damage keys on (seed, file name), not path, so reruns in fresh
        # directories corrupt identically.
        assert a.read_bytes() == b.read_bytes()

    def test_unknown_mode_rejected(self, tmp_path):
        path = self._file(tmp_path)
        with pytest.raises(ValueError):
            inject_into_file(path, FaultPlan(corrupt_mode="scribble"))

    def test_directory_sweep_filters_suffixes(self, tmp_path):
        assert ".pkl" in INJECTABLE_SUFFIXES
        cache = self._file(tmp_path, "entry.pkl")
        self._file(tmp_path, "notes.txt")
        hit = inject_into_path(tmp_path, FaultPlan(corrupt_rate=1.0))
        assert hit == [cache]

    def test_directory_sweep_honours_rate(self, tmp_path):
        for i in range(8):
            self._file(tmp_path, f"entry{i}.pkl")
        assert inject_into_path(tmp_path, FaultPlan(corrupt_rate=0.0)) == []
        hit = inject_into_path(tmp_path, FaultPlan(corrupt_rate=1.0))
        assert len(hit) == 8

    def test_single_file_target(self, tmp_path):
        path = self._file(tmp_path)
        original = path.read_bytes()
        assert inject_into_path(path, FaultPlan()) == [path]
        assert path.read_bytes() != original

    def test_missing_target_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            inject_into_path(tmp_path / "nope", FaultPlan())


class TestFaultsCli:
    def test_inject_command_damages_cache_dir(self, tmp_path, capsys):
        path = tmp_path / "entry.pkl"
        path.write_bytes(b"x" * 1024)
        original = path.read_bytes()
        assert main(["faults", "inject", str(tmp_path), "--mode", "bitflip"]) == 0
        out = capsys.readouterr().out
        assert "damaged 1 file(s)" in out
        assert path.read_bytes() != original

    def test_inject_command_missing_target(self, tmp_path, capsys):
        assert main(["faults", "inject", str(tmp_path / "gone")]) == 1
        assert "does not exist" in capsys.readouterr().err
