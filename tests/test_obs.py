"""Observability subsystem: registry, spans, merging, and pipeline wiring.

Covers the contracts the rest of the repo relies on: label canonical
keys, merge semantics (counters add / gauges max / histograms bucket-wise
/ span parents rebased), pickling across process boundaries, the
zero-overhead no-op path, serial-vs-parallel metric determinism, and the
end-to-end ``halo plot --metrics-out`` acceptance flow.
"""

import pickle
import time

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.harness.prepare import PhaseTimes
from repro.harness.reproduce import evaluate_all
from repro.harness.runner import measure_baseline, measure_halo
from repro.obs.metrics import (
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
    SpanData,
    metric_key,
    split_metric_key,
)
from repro.obs.spans import phase_span, span
from repro.workloads.base import get_workload

BENCH = "deepsjeng"


@pytest.fixture(autouse=True)
def _no_leaked_registry():
    """Every test starts and ends with observability disabled."""
    obs.uninstall()
    yield
    obs.uninstall()


class TestMetricKeys:
    def test_no_labels_is_bare_name(self):
        assert metric_key("a.b", {}) == "a.b"

    def test_labels_sorted(self):
        assert metric_key("m", {"b": 2, "a": "x"}) == 'm{a="x",b="2"}'

    def test_round_trip(self):
        key = metric_key("m.n", {"workload": "health", "config": "halo"})
        assert split_metric_key(key) == ("m.n", {"config": "halo", "workload": "health"})

    def test_split_bare(self):
        assert split_metric_key("plain") == ("plain", {})


class TestRegistry:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.inc("c", 1, k="a")
        reg.inc("c", 2, k="a")
        reg.inc("c", 5, k="b")
        snap = reg.snapshot()
        assert snap.counters == {'c{k="a"}': 3, 'c{k="b"}': 5}
        assert snap.sum_counter("c") == 8

    def test_gauge_max_keeps_high_water_mark(self):
        reg = MetricsRegistry()
        reg.gauge_max("g", 5)
        reg.gauge_max("g", 3)
        reg.gauge_set("h", 3)
        reg.gauge_set("h", 1)
        snap = reg.snapshot()
        assert snap.gauges["g"] == 5
        assert snap.gauges["h"] == 1  # last write wins for plain sets

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.3)
        reg.observe("lat", 0.3)
        reg.observe("lat", 1000.0)  # beyond the last bound -> overflow slot
        hist = reg.snapshot().histograms["lat"]
        assert hist.count == 3
        assert hist.total == pytest.approx(1000.6)
        assert hist.counts[-1] == 1
        assert sum(hist.counts) == 3

    def test_snapshot_is_deep_copy(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.observe("h", 0.1)
        reg.end_span(reg.begin_span("s", 0.0, {"a": 1}), 1.0)
        snap = reg.snapshot()
        reg.inc("c")
        reg.observe("h", 0.2)
        assert snap.counters["c"] == 1
        assert snap.histograms["h"].count == 1
        snap.spans[0].attrs["a"] = 2
        assert reg.snapshot().spans[0].attrs["a"] == 1

    def test_module_helpers_are_noops_without_registry(self):
        assert obs.active_registry() is None
        obs.inc("never")
        obs.gauge_set("never", 1)
        obs.gauge_max("never", 1)
        obs.observe("never", 1.0)
        reg = obs.install(MetricsRegistry())
        assert reg.snapshot().is_empty()

    def test_collecting_restores_previous(self):
        outer = obs.install(MetricsRegistry())
        with obs.collecting() as inner:
            obs.inc("in")
            assert obs.active_registry() is inner
        assert obs.active_registry() is outer
        assert outer.snapshot().is_empty()
        assert inner.snapshot().counters == {"in": 1}


class TestSnapshotMerge:
    def test_counters_add_gauges_max(self):
        a = MetricsSnapshot(counters={"c": 1}, gauges={"g": 2})
        b = MetricsSnapshot(counters={"c": 3, "d": 1}, gauges={"g": 1, "h": 7})
        a.merge(b)
        assert a.counters == {"c": 4, "d": 1}
        assert a.gauges == {"g": 2, "h": 7}

    def test_histograms_never_alias(self):
        h = HistogramData()
        h.observe(0.1)
        a = MetricsSnapshot()
        a.merge(MetricsSnapshot(histograms={"h": h}))
        h.observe(0.1)
        assert a.histograms["h"].count == 1

    def test_span_parents_rebased(self):
        a = MetricsSnapshot(spans=[SpanData("x", 0.0, 1.0)])
        b = MetricsSnapshot(
            spans=[
                SpanData("root", 0.0, 2.0),
                SpanData("child", 0.5, 1.0, depth=1, parent=0),
            ]
        )
        a.merge(b)
        assert [s.parent for s in a.spans] == [-1, -1, 1]
        assert a.spans[2].name == "child"

    def test_merge_source_untouched(self):
        src = MetricsSnapshot(counters={"c": 1}, spans=[SpanData("s", 0.0, 1.0)])
        MetricsSnapshot(spans=[SpanData("x", 0.0, 1.0)]).merge(src)
        assert src.counters == {"c": 1}
        assert src.spans[0].parent == -1

    def test_pickle_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("c", 2, k="v")
        reg.observe("h", 0.2)
        reg.end_span(reg.begin_span("s", 1.0, {"w": "health"}), 0.5)
        snap = reg.snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap


class TestSpans:
    def test_nesting_depth_and_parent(self):
        reg = obs.install(MetricsRegistry())
        with span("outer"):
            with span("inner", k="v"):
                pass
        outer, inner = reg.snapshot().spans
        assert (outer.depth, outer.parent) == (0, -1)
        assert (inner.depth, inner.parent) == (1, 0)
        assert inner.attrs == {"k": "v"}
        assert outer.duration >= inner.duration >= 0.0

    def test_span_times_without_registry(self):
        with span("lonely") as sp:
            time.sleep(0.001)
        assert sp.elapsed > 0.0

    def test_phase_span_feeds_times_and_counter(self):
        reg = obs.install(MetricsRegistry())
        times = PhaseTimes()
        with phase_span(times, "profile", workload="w"):
            time.sleep(0.001)
        snap = reg.snapshot()
        assert times.profile > 0.0
        key = 'phase.seconds{phase="profile"}'
        assert snap.counters[key] == pytest.approx(times.profile)
        assert snap.spans[0].name == "phase.profile"

    def test_phase_span_accepts_none_times(self):
        with phase_span(None, "record") as sp:
            pass
        assert sp.elapsed >= 0.0


class TestMeasurementHarvest:
    def test_counters_match_measurement(self):
        workload = get_workload(BENCH)
        with obs.collecting() as reg:
            measurement = measure_baseline(workload, scale="test", seed=1)
        snap = reg.snapshot()
        labels = {"workload": BENCH, "config": "baseline"}
        key = lambda name: metric_key(name, labels)  # noqa: E731
        assert snap.counters[key("measure.runs")] == 1
        assert snap.counters[key("measure.cache.l1_misses")] == measurement.cache.l1_misses
        assert snap.counters[key("measure.machine.loads")] + snap.counters[
            key("measure.machine.stores")
        ] == measurement.accesses
        assert snap.counters[key("measure.peak_live_bytes")] == measurement.peak_live_bytes

    def test_grouped_alloc_counters_for_halo_config(self, prepared_halo):
        workload, artifacts = prepared_halo
        with obs.collecting() as reg:
            measurement = measure_halo(workload, artifacts, scale="test", seed=1)
        snap = reg.snapshot()
        labels = {"workload": BENCH, "config": "halo"}
        grouped = snap.counters[metric_key("measure.alloc.grouped_allocs", labels)]
        forwarded = snap.counters[metric_key("measure.alloc.forwarded_allocs", labels)]
        assert grouped == measurement.grouped_allocs
        # deepsjeng's test input forwards everything; the counter still
        # has to agree with the measurement and prove the family exists.
        assert forwarded == measurement.forwarded_allocs > 0

    def test_disabled_run_records_nothing(self):
        workload = get_workload(BENCH)
        reg = MetricsRegistry()  # never installed
        measure_baseline(workload, scale="test", seed=1)
        assert reg.snapshot().is_empty()
        assert obs.active_registry() is None

    @pytest.fixture(scope="class")
    def prepared_halo(self):
        """One prepared HALO pipeline for the cheap benchmark."""
        from repro.harness.prepare import prepare_workload

        workload = get_workload(BENCH)
        prepared = prepare_workload(BENCH, include_hds=False, workload=workload)
        return workload, prepared.halo


def _measure_counters(jobs: int) -> dict[str, float]:
    """The merged ``measure.*`` counters of one small evaluation."""
    reg = obs.install(MetricsRegistry())
    times = PhaseTimes()
    try:
        evaluate_all(
            (BENCH,), trials=1, scale="test", include_random=False,
            jobs=jobs, phase_times=times,
        )
        snap = reg.snapshot()
        if times.metrics is not None:
            snap.merge(times.metrics)
    finally:
        obs.uninstall()
    return snap.counters_with_prefix("measure.")


class TestDeterminism:
    def test_serial_and_parallel_measure_counters_identical(self):
        serial = _measure_counters(jobs=1)
        parallel = _measure_counters(jobs=2)
        assert serial  # the family is populated at all
        assert serial == parallel  # bit-identical, not approximately equal


class TestNoOpOverhead:
    def test_overhead_under_five_percent(self):
        workload = get_workload("health")

        def run_once() -> float:
            started = time.perf_counter()
            measure_baseline(workload, scale="test", seed=1)
            return time.perf_counter() - started

        run_once()  # warm caches/JIT-ish effects out of the comparison
        disabled = min(run_once() for _ in range(3))
        obs.install(MetricsRegistry())
        try:
            enabled = min(run_once() for _ in range(3))
        finally:
            obs.uninstall()
        # Harvest-based instrumentation adds a handful of dict writes per
        # measurement; allow 5% plus a small absolute slack for timer noise.
        assert enabled <= disabled * 1.05 + 0.05


class TestEndToEnd:
    def test_plot_metrics_out_acceptance(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        ret = cli_main(
            [
                "plot", "--figure", "13", "--benchmarks", "health",
                "--trials", "1", "--scale", "test", "--no-cache",
                "--metrics-out", str(out),
            ]
        )
        assert ret == 0
        assert "phase wall-time" in capsys.readouterr().out
        snap = obs.snapshot_from_json(out.read_text())
        names = {s.name for s in snap.spans}
        assert {"phase.profile", "phase.analyse", "phase.measure"} <= names
        assert "halo.plot.figure13" in names
        assert snap.sum_counter("measure.alloc.grouped_allocs") > 0
        assert snap.sum_counter("phase.seconds") > 0
        # The CLI uninstalled its registry on the way out.
        assert obs.active_registry() is None
