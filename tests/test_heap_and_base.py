"""Remaining edge cases: ObjectTable, Allocator base, experiment stats."""

import pytest

from repro.allocators import AddressSpace
from repro.allocators.base import Allocator, AllocatorStats
from repro.harness.experiment import TrialStats
from repro.machine import HeapError, ObjectTable
from repro.machine.heap import HeapObject


class TestObjectTable:
    def test_create_assigns_ids_and_seqs(self):
        table = ObjectTable()
        a = table.create(0x1000, 32)
        b = table.create(0x2000, 32)
        assert (a.oid, b.oid) == (0, 1)
        assert b.alloc_seq == a.alloc_seq + 1
        assert table.total_allocated == 2

    def test_duplicate_address_rejected(self):
        table = ObjectTable()
        table.create(0x1000, 32)
        with pytest.raises(HeapError):
            table.create(0x1000, 16)

    def test_destroy_releases_slot(self):
        table = ObjectTable()
        obj = table.create(0x1000, 32)
        table.destroy(obj)
        assert table.at(0x1000) is None
        assert table.live_count == 0
        # Address is reusable afterwards.
        table.create(0x1000, 8)

    def test_destroy_foreign_object_rejected(self):
        table = ObjectTable()
        table.create(0x1000, 32)
        impostor = HeapObject(99, 0x1000, 32, 0)
        with pytest.raises(HeapError):
            table.destroy(impostor)

    def test_move_relocates(self):
        table = ObjectTable()
        obj = table.create(0x1000, 32)
        table.move(obj, 0x3000, 64)
        assert table.at(0x1000) is None
        assert table.at(0x3000) is obj
        assert obj.size == 64

    def test_move_onto_live_address_rejected(self):
        table = ObjectTable()
        a = table.create(0x1000, 32)
        table.create(0x2000, 32)
        with pytest.raises(HeapError):
            table.move(a, 0x2000, 32)

    def test_move_in_place_allowed(self):
        table = ObjectTable()
        obj = table.create(0x1000, 32)
        table.move(obj, 0x1000, 48)
        assert obj.size == 48

    def test_live_objects_listing(self):
        table = ObjectTable()
        a = table.create(0x1000, 32)
        b = table.create(0x2000, 32)
        table.destroy(a)
        assert table.live_objects() == [b]

    def test_end(self):
        assert HeapObject(0, 0x100, 32, 0).end() == 0x120


class TestAllocatorStats:
    def test_peak_tracking(self):
        stats = AllocatorStats()
        stats.on_alloc(100)
        stats.on_alloc(50)
        stats.on_free(100)
        stats.on_alloc(20)
        assert stats.live_bytes == 70
        assert stats.peak_live_bytes == 150
        assert stats.total_allocs == 3
        assert stats.total_frees == 1


class TestBaseReallocDefault:
    class Fixed(Allocator):
        """Minimal allocator exercising the ABC's default realloc."""

        def __init__(self):
            super().__init__(AddressSpace(0))
            self._sizes = {}
            self._next = 0x1000

        def malloc(self, size, alignment=8):
            addr = self._next
            self._next += 4096
            self._sizes[addr] = size
            return addr

        def free(self, addr):
            return self._sizes.pop(addr)

        def size_of(self, addr):
            return self._sizes[addr]

    def test_shrink_keeps_address(self):
        allocator = self.Fixed()
        addr = allocator.malloc(100)
        assert allocator.realloc(addr, 50) == addr

    def test_grow_moves(self):
        allocator = self.Fixed()
        addr = allocator.malloc(100)
        new = allocator.realloc(addr, 500)
        assert new != addr
        assert allocator.size_of(new) == 500
        assert addr not in allocator._sizes


class TestAddressSpaceAccounting:
    def test_peak_reserved(self):
        space = AddressSpace(0)
        a = space.reserve(8192)
        space.reserve(4096)
        space.release(a)
        assert space.reserved_bytes == 4096
        assert space.peak_reserved_bytes == 12288


class TestTrialStatsEdges:
    def test_single_value(self):
        stats = TrialStats.of([42.0])
        assert stats.median == stats.q25 == stats.q75 == 42.0

    def test_quartiles_ordered(self):
        stats = TrialStats.of([5.0, 1.0, 9.0, 3.0, 7.0, 2.0])
        assert stats.q25 <= stats.median <= stats.q75

    def test_even_count_median(self):
        assert TrialStats.of([1.0, 3.0]).median == 2.0
