"""Integration tests: HALO pipeline end to end on a controlled program.

These reproduce the paper's §3 motivating example as a machine-checkable
scenario: three object types allocated interleaved, two traversed together,
and HALO must (1) discover the relationship, (2) identify it at runtime,
(3) co-locate the hot objects, and (4) reduce simulated L1 misses.
"""

import pytest

from repro.allocators import AddressSpace, SizeClassAllocator
from repro.cache import CacheHierarchy
from repro.core import (
    HaloParams,
    make_runtime,
    optimise_profile,
    profile_workload,
)
from repro.machine import Machine, ProgramBuilder


class MotivationWorkload:
    """The Figure 2 program: types A and B are chased, C is ignored."""

    name = "motivation"

    def __init__(self, objects=400, passes=20):
        self.objects = objects
        self.passes = passes
        b = ProgramBuilder("motivation")
        b.function("malloc", in_main_binary=False)
        self.sites = {
            kind: (b.call_site("main", f"create_{kind}"),
                   b.call_site(f"create_{kind}", "malloc"))
            for kind in "abc"
        }
        self.program = b.build()

    def run(self, machine, scale="ref"):
        hot = []
        for _ in range(self.objects):
            for kind in "abc":
                outer, inner = self.sites[kind]
                with machine.call(outer):
                    with machine.call(inner):
                        obj = machine.malloc(32)
                machine.store(obj, 0, 8)
                if kind in "ab":
                    hot.append(obj)
        for _ in range(self.passes):
            for obj in hot:
                machine.load(obj, 0, 8)
        machine.finish()


@pytest.fixture(scope="module")
def artifacts():
    workload = MotivationWorkload()
    profile = profile_workload(workload, HaloParams(), scale="test")
    return workload, profile, optimise_profile(profile, HaloParams())


class TestPipelineArtifacts:
    def test_profile_finds_three_contexts(self, artifacts):
        _, profile, _ = artifacts
        # a, b (hot) plus possibly c depending on coverage.
        assert len(profile.contexts) == 3
        assert len(profile.graph) >= 2

    def test_hot_pair_grouped_together(self, artifacts):
        workload, profile, halo = artifacts
        chains = {
            kind: (workload.sites[kind][0].addr, workload.sites[kind][1].addr)
            for kind in "abc"
        }
        cid_a = profile.contexts.lookup(chains["a"])
        cid_b = profile.contexts.lookup(chains["b"])
        cid_c = profile.contexts.lookup(chains["c"])
        joint = [g for g in halo.groups if cid_a in g and cid_b in g]
        assert joint, "types A and B must share a group"
        assert all(cid_c not in g for g in halo.groups), "type C must stay out"

    def test_selectors_cover_group_members(self, artifacts):
        workload, profile, halo = artifacts
        for group in halo.groups:
            selector = next(
                s for s in halo.identification.selectors if s.gid == group.gid
            )
            for cid in group.members:
                assert selector.matches_chain(profile.contexts.chain(cid))

    def test_plan_is_small(self, artifacts):
        _, _, halo = artifacts
        # "only a small handful of call sites that it must monitor"
        assert 1 <= halo.plan.bits_used <= 4

    def test_runtime_groups_all_hot_allocations(self, artifacts):
        workload, _, halo = artifacts
        runtime = make_runtime(halo, AddressSpace(7))
        machine = Machine(
            workload.program,
            runtime.allocator,
            instrumentation=runtime.instrumentation,
            state_vector=runtime.state_vector,
        )
        workload.run(machine)
        assert runtime.allocator.grouped_allocs == 2 * workload.objects
        assert runtime.allocator.forwarded_allocs == workload.objects

    def test_halo_reduces_l1_misses(self, artifacts):
        workload, _, halo = artifacts

        def measure(make_machine):
            memory = CacheHierarchy()
            machine = make_machine(memory)
            workload.run(machine)
            return memory.snapshot().l1_misses

        base_misses = measure(
            lambda memory: Machine(
                workload.program,
                SizeClassAllocator(AddressSpace(3)),
                memory=memory,
            )
        )

        def halo_machine(memory):
            runtime = make_runtime(halo, AddressSpace(3))
            return Machine(
                workload.program,
                runtime.allocator,
                memory=memory,
                instrumentation=runtime.instrumentation,
                state_vector=runtime.state_vector,
            )

        halo_misses = measure(halo_machine)
        assert halo_misses < base_misses
        # The hot traversal's misses drop by roughly a third (C evicted
        # from the hot lines): allow a generous band.
        assert (base_misses - halo_misses) / base_misses > 0.15


class TestHdsOnMotivation:
    def test_hds_groups_a_and_b_by_site(self):
        from repro.hds import HdsParams, analyse_profile
        from repro.hds.pipeline import make_runtime as make_hds_runtime

        workload = MotivationWorkload()
        profile = profile_workload(
            workload, HaloParams(), scale="test", record_trace=True
        )
        hds = analyse_profile(profile, HdsParams())
        assert len(hds.groups) == 1
        expected = {
            workload.sites["a"][1].addr,
            workload.sites["b"][1].addr,
        }
        assert hds.groups[0].sites == frozenset(expected)

        runtime = make_hds_runtime(hds, AddressSpace(5))
        machine = Machine(workload.program, runtime.allocator)
        runtime.attach(machine)
        workload.run(machine)
        assert runtime.allocator.grouped_allocs == 2 * workload.objects
