"""Property-based tests on core data structures and invariants."""


from hypothesis import given, settings, strategies as st

from repro.allocators import (
    AddressSpace,
    BumpAllocator,
    GroupAllocator,
    SizeClassAllocator,
)
from repro.cache import SetAssociativeCache
from repro.machine import GroupStateVector


# ---------------------------------------------------------------------------
# Allocator invariants: no overlap, alignment, exact free/size accounting.
# ---------------------------------------------------------------------------

alloc_scripts = st.lists(
    st.one_of(
        st.tuples(st.just("malloc"), st.integers(1, 5000)),
        st.tuples(st.just("free"), st.integers(0, 10_000)),
        st.tuples(st.just("realloc"), st.integers(1, 5000)),
    ),
    min_size=1,
    max_size=120,
)


def run_script(allocator, script):
    """Execute an allocation script; checks overlap/alignment invariants."""
    live: dict[int, int] = {}  # addr -> size
    order: list[int] = []

    def check_no_overlap(addr, size):
        for other, other_size in live.items():
            assert addr + size <= other or other + other_size <= addr, (
                f"overlap: [{addr:#x},{addr + size:#x}) with "
                f"[{other:#x},{other + other_size:#x})"
            )

    for op, value in script:
        if op == "malloc":
            addr = allocator.malloc(value)
            assert addr % 8 == 0
            check_no_overlap(addr, value)
            live[addr] = value
            order.append(addr)
        elif op == "free" and order:
            addr = order.pop(value % len(order))
            size = live.pop(addr)
            assert allocator.free(addr) == size
        elif op == "realloc" and order:
            addr = order[-1]
            del live[addr]
            new_addr = allocator.realloc(addr, value)
            check_no_overlap(new_addr, value)
            live[new_addr] = value
            order[-1] = new_addr
    return live


class TestSizeClassAllocatorProperties:
    @given(alloc_scripts)
    @settings(max_examples=120, deadline=None)
    def test_no_overlap_and_exact_accounting(self, script):
        allocator = SizeClassAllocator(AddressSpace(0))
        live = run_script(allocator, script)
        assert allocator.stats.live_bytes == sum(live.values())
        assert allocator.stats.live_blocks == len(live)
        for addr, size in live.items():
            assert allocator.size_of(addr) == size

    @given(st.lists(st.integers(1, 14336), min_size=1, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_free_then_realloc_reuses_space(self, sizes):
        allocator = SizeClassAllocator(AddressSpace(0))
        addrs = [allocator.malloc(size) for size in sizes]
        for addr in addrs:
            allocator.free(addr)
        again = [allocator.malloc(size) for size in sizes]
        # Identical request sequence after a full drain lands on the same
        # addresses (lowest-address-first reuse).
        assert again == addrs


class TestBumpAllocatorProperties:
    @given(st.lists(st.integers(1, 2000), min_size=1, max_size=80))
    @settings(max_examples=80, deadline=None)
    def test_monotonic_within_pool_and_aligned(self, sizes):
        bump = BumpAllocator(AddressSpace(0), pool_size=1 << 16)
        last = None
        for size in sizes:
            addr = bump.malloc(size)
            assert addr % 8 == 0
            if last is not None and addr > last[0]:
                # same pool: regions must not overlap
                assert addr >= last[0] + last[1]
            last = (addr, size)


class _CyclingMatcher:
    def __init__(self, groups):
        self.groups = groups
        self.i = 0

    def match(self, state):
        self.i += 1
        gid = self.groups[self.i % len(self.groups)]
        return gid


class TestGroupAllocatorProperties:
    @given(
        st.lists(st.integers(1, 3000), min_size=1, max_size=100),
        st.integers(1, 4),
    )
    @settings(max_examples=80, deadline=None)
    def test_no_overlap_across_groups_and_fallback(self, sizes, n_groups):
        space = AddressSpace(0)
        allocator = GroupAllocator(
            space,
            SizeClassAllocator(space),
            _CyclingMatcher([None] + list(range(n_groups))),
            GroupStateVector(),
            chunk_size=1 << 16,
            slab_size=1 << 18,
        )
        live = {}
        for size in sizes:
            addr = allocator.malloc(size)
            for other, other_size in live.items():
                assert addr + size <= other or other + other_size <= addr
            live[addr] = size
        for addr, size in live.items():
            assert allocator.size_of(addr) == size
            assert allocator.free(addr) == size
        assert allocator.grouped_live_bytes == 0

    @given(st.lists(st.integers(1, 1000), min_size=2, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_single_group_contiguity(self, sizes):
        """Consecutive grouped allocations are contiguous modulo alignment."""
        space = AddressSpace(0)
        allocator = GroupAllocator(
            space,
            SizeClassAllocator(space),
            _CyclingMatcher([0]),
            GroupStateVector(),
        )
        addrs = [allocator.malloc(size) for size in sizes]
        for (a, size), b in zip(zip(addrs, sizes), addrs[1:]):
            gap = b - (a + size)
            assert 0 <= gap < 8  # only alignment padding between regions


class TestCacheProperties:
    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, lines):
        cache = SetAssociativeCache(4096, 4, 64)
        for line in lines:
            cache.access_line(line)
        assert cache.stats.hits + cache.stats.misses == cache.stats.accesses

    @given(st.lists(st.integers(0, 64), min_size=1, max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_immediate_reaccess_always_hits(self, lines):
        cache = SetAssociativeCache(4096, 4, 64)
        for line in lines:
            cache.access_line(line)
            assert cache.access_line(line)

    @given(st.lists(st.integers(0, 40), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_more_ways_never_miss_more(self, lines):
        # LRU inclusion: with the same set count, a higher-associativity
        # cache's content is a superset, so misses are monotone.
        small = SetAssociativeCache(1024, 2, 64)   # 8 sets, 2 ways
        large = SetAssociativeCache(2048, 4, 64)   # 8 sets, 4 ways
        assert small.num_sets == large.num_sets
        for line in lines:
            small.access_line(line)
            large.access_line(line)
        assert large.stats.misses <= small.stats.misses


class TestStateVectorProperties:
    @given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), max_size=100))
    @settings(max_examples=80, deadline=None)
    def test_set_clear_consistency(self, ops):
        sv = GroupStateVector()
        expected = set()
        for bit, set_it in ops:
            if set_it:
                sv.set(bit)
                expected.add(bit)
            else:
                sv.clear(bit)
                expected.discard(bit)
            assert sv.test(bit) == (bit in expected)
        assert sv.value == sum(1 << b for b in expected)
