"""Unit tests for the BOLT-style rewriter."""

import pytest

from repro.machine import ProgramBuilder
from repro.rewriting import BoltRewriter, RewriteError


def library_call_program():
    b = ProgramBuilder("p")
    b.function("libfn", in_main_binary=False, traceable=False)
    main_site = b.call_site("main", "f")
    lib_site = b.call_site("libfn", "f")  # call located in library code
    return b.build(), main_site, lib_site


class TestBoltRewriter:
    def test_instrument_assigns_dense_bits(self):
        b = ProgramBuilder("p")
        s1 = b.call_site("main", "f")
        s2 = b.call_site("main", "g")
        plan = BoltRewriter(b.build()).instrument([s2.addr, s1.addr])
        assert plan.bit_for_site == {s1.addr: 0, s2.addr: 1}
        assert plan.bits_used == 2

    def test_duplicate_sites_collapsed(self):
        b = ProgramBuilder("p")
        s1 = b.call_site("main", "f")
        plan = BoltRewriter(b.build()).instrument([s1.addr, s1.addr])
        assert plan.bits_used == 1

    def test_plan_is_deterministic(self):
        b = ProgramBuilder("p")
        sites = [b.call_site("main", f"f{i}").addr for i in range(5)]
        rewriter = BoltRewriter(b.build())
        assert rewriter.instrument(reversed(sites)) == rewriter.instrument(sites)

    def test_unknown_site_rejected(self):
        program = ProgramBuilder("p").build()
        with pytest.raises(RewriteError):
            BoltRewriter(program).instrument([0xDEAD])

    def test_library_site_rejected(self):
        program, main_site, lib_site = library_call_program()
        rewriter = BoltRewriter(program)
        with pytest.raises(RewriteError):
            rewriter.instrument([lib_site.addr])

    def test_can_instrument(self):
        program, main_site, lib_site = library_call_program()
        rewriter = BoltRewriter(program)
        assert rewriter.can_instrument(main_site.addr)
        assert not rewriter.can_instrument(lib_site.addr)
        assert not rewriter.can_instrument(0xDEAD)

    def test_pie_binary_rejected(self):
        program = ProgramBuilder("p", pie=True).build()
        with pytest.raises(RewriteError):
            BoltRewriter(program)

    def test_plan_describe(self):
        b = ProgramBuilder("p")
        site = b.call_site("main", "f", label="hot")
        program = b.build()
        plan = BoltRewriter(program).instrument([site.addr])
        lines = plan.describe(program)
        assert len(lines) == 1
        assert "bit  0" in lines[0] and "hot" in lines[0]

    def test_empty_plan(self):
        plan = BoltRewriter(ProgramBuilder("p").build()).instrument([])
        assert plan.sites == frozenset()
        assert plan.bits_used == 0
