"""Tests for the synthetic benchmark suite: structure, determinism, claims."""

import pytest

from repro.allocators import AddressSpace, SizeClassAllocator
from repro.core import HaloParams, optimise_profile, profile_workload
from repro.hds import HdsParams, analyse_profile
from repro.machine import Machine
from repro.workloads import SCALES, Workload, WorkloadError, get_workload, workload_names

ALL = workload_names()
WRAPPER_BENCHMARKS = ("povray", "omnetpp", "xalanc", "leela")


def run_quick(workload, scale="test"):
    machine = Machine(workload.program, SizeClassAllocator(AddressSpace(0)))
    workload.run(machine, scale)
    return machine


class TestRegistry:
    def test_eleven_paper_benchmarks_registered(self):
        assert ALL[:11] == [
            "health", "ft", "analyzer", "ammp", "art", "equake",
            "povray", "omnetpp", "xalanc", "leela", "roms",
        ]

    def test_unknown_name_raises(self):
        with pytest.raises(WorkloadError):
            get_workload("missing")

    def test_instances_are_fresh(self):
        assert get_workload("health") is not get_workload("health")

    def test_metadata_present(self):
        for name in ALL:
            workload = get_workload(name)
            assert workload.suite
            assert workload.description
            assert workload.work_per_access > 0


@pytest.mark.parametrize("name", ALL)
class TestEveryWorkload:
    def test_runs_and_frees_everything(self, name):
        workload = get_workload(name)
        machine = run_quick(workload)
        assert machine.metrics.allocs > 100
        assert machine.metrics.accesses > 1000
        assert machine.objects.live_count == 0  # no leaks
        assert machine.stack == []  # balanced calls

    def test_deterministic_across_runs(self, name):
        m1 = run_quick(get_workload(name))
        m2 = run_quick(get_workload(name))
        assert m1.metrics.allocs == m2.metrics.allocs
        assert m1.metrics.accesses == m2.metrics.accesses
        assert m1.metrics.compute_cycles == m2.metrics.compute_cycles

    def test_scales_ordered(self, name):
        test_m = run_quick(get_workload(name), "test")
        ref_m = run_quick(get_workload(name), "ref")
        assert ref_m.metrics.accesses > test_m.metrics.accesses

    def test_unknown_scale_rejected(self, name):
        workload = get_workload(name)
        machine = Machine(workload.program, SizeClassAllocator(AddressSpace(0)))
        with pytest.raises(WorkloadError):
            workload.run(machine, "gigantic")

    def test_profilable(self, name):
        workload = get_workload(name)
        profile = profile_workload(workload, HaloParams(), scale="test")
        assert len(profile.graph) >= 1
        assert profile.total_accesses > 0


class TestWrapperIdentificationClaims:
    """The structural claims behind the paper's HDS failures."""

    @pytest.mark.parametrize("name", WRAPPER_BENCHMARKS)
    def test_hds_finds_no_groups_on_wrapper_benchmarks(self, name):
        workload = get_workload(name)
        profile = profile_workload(
            workload, HaloParams(), scale="test", record_trace=True
        )
        hds = analyse_profile(profile, HdsParams(**workload.hds_overrides))
        assert hds.groups == []

    @pytest.mark.parametrize("name", WRAPPER_BENCHMARKS)
    def test_halo_still_forms_groups(self, name):
        workload = get_workload(name)
        profile = profile_workload(workload, HaloParams(**{
            k: v for k, v in workload.halo_overrides.items()
        }), scale="test")
        halo = optimise_profile(profile, HaloParams())
        assert halo.groups

    @pytest.mark.parametrize("name", WRAPPER_BENCHMARKS)
    def test_all_hot_allocations_share_one_immediate_site(self, name):
        workload = get_workload(name)
        profile = profile_workload(
            workload, HaloParams(), scale="test", record_trace=True
        )
        sites = set(profile.object_site.values())
        # The dominant allocation funnel: >=80% of objects share one site.
        from collections import Counter

        counts = Counter(profile.object_site.values())
        top = counts.most_common(1)[0][1]
        assert top / sum(counts.values()) > 0.8


class TestRomsClaims:
    def test_stream_blowup_vs_graph_nodes(self):
        workload = get_workload("roms")
        profile = profile_workload(
            workload, HaloParams(), scale="test", record_trace=True
        )
        hds = analyse_profile(profile, HdsParams(**workload.hds_overrides))
        # §5.2: tiny affinity graph, orders of magnitude more hot streams.
        assert len(profile.graph) <= 10
        assert hds.stream_count > 50 * len(profile.graph)

    def test_truncated_set_strands_third_cell(self):
        workload = get_workload("roms")
        profile = profile_workload(
            workload, HaloParams(), scale="test", record_trace=True
        )
        hds = analyse_profile(profile, HdsParams(**workload.hds_overrides))
        grouped_sites = set().union(*(g.sites for g in hds.groups)) if hds.groups else set()
        assert workload.s_c_malloc.addr in grouped_sites
        assert workload.s_d_malloc.addr in grouped_sites
        assert workload.s_e_malloc.addr not in grouped_sites


class TestHealthClaims:
    def test_patients_share_malloc_site_across_paths(self):
        workload = get_workload("health")
        profile = profile_workload(
            workload, HaloParams(), scale="test", record_trace=True
        )
        # Both the hot and the cold path allocate through generate_patient's
        # single malloc call site (the full-context crux).
        site = workload.s_patient_malloc.addr
        contexts_with_site = [
            cid
            for cid in profile.contexts
            if site in profile.contexts.chain(cid)
        ]
        assert len(contexts_with_site) >= 2

    def test_halo_separates_hot_from_cold_patients(self):
        workload = get_workload("health")
        profile = profile_workload(workload, HaloParams(), scale="test")
        halo = optimise_profile(profile, HaloParams())
        hot_chain = None
        cold_chain = None
        for cid in profile.contexts:
            chain = profile.contexts.chain(cid)
            if workload.s_emerg_patient.addr in chain:
                hot_chain = cid
            if workload.s_routine_patient.addr in chain:
                cold_chain = cid
        assert hot_chain is not None and cold_chain is not None
        for group in halo.groups:
            assert not ({hot_chain, cold_chain} <= group.members)


class TestScaleFactors:
    def test_scale_table(self):
        assert SCALES["test"] < SCALES["train"] < SCALES["ref"]

    def test_scaled_minimum(self):
        assert Workload.scaled(1, 0.001) == 1
        assert Workload.scaled(1000, 0.25) == 250
