"""Fast (test-scale) checks of the figure/table reproduction entry points."""

import pytest

from repro.harness import reproduce


@pytest.fixture(scope="module")
def mini_evaluations():
    """A reduced matrix: two contrasting benchmarks, test-scale, one trial."""
    return reproduce.evaluate_all(
        benchmarks=("ft", "povray"), trials=1, scale="test", include_random=True
    )


class TestEvaluateWorkload:
    def test_evaluation_fields(self, mini_evaluations):
        evaluation = mini_evaluations["ft"]
        assert evaluation.baseline.config == "baseline"
        assert evaluation.halo.config == "halo"
        assert evaluation.hds.config == "hds"
        assert evaluation.random_pools is not None
        assert evaluation.halo_groups >= 1
        assert evaluation.graph_nodes >= 1

    def test_contrasting_benchmarks(self, mini_evaluations):
        # ft: direct sites — HDS forms groups; povray: wrapper — it cannot.
        assert mini_evaluations["ft"].hds_groups >= 1
        assert mini_evaluations["povray"].hds_groups == 0

    def test_reduction_properties_consistent(self, mini_evaluations):
        for evaluation in mini_evaluations.values():
            base = evaluation.baseline.l1_misses.median
            halo = evaluation.halo.l1_misses.median
            expected = (base - halo) / base
            assert evaluation.halo_miss_reduction == pytest.approx(expected)


class TestFigureAssembly:
    def test_figure13_series(self, mini_evaluations):
        result = reproduce.figure13(mini_evaluations)
        assert [series.label for series in result.series] == ["Chilimbi et al.", "HALO"]
        for series in result.series:
            assert set(series.values) == {"ft", "povray"}

    def test_figure14_series(self, mini_evaluations):
        result = reproduce.figure14(mini_evaluations)
        assert "speedup" in result.figure
        assert len(result.series) == 2

    def test_figure15_series(self, mini_evaluations):
        result = reproduce.figure15(mini_evaluations)
        assert len(result.series) == 1
        assert set(result.series[0].values) == {"ft", "povray"}


class TestFigure12:
    def test_small_sweep(self):
        result = reproduce.figure12(distances=(64, 128), trials=1, scale="test")
        assert set(result.series[0].values) == {"64", "128"}
        assert result.notes["baseline"] > 0

    def test_all_points_positive(self):
        result = reproduce.figure12(distances=(128,), trials=1, scale="test")
        assert all(v > 0 for v in result.series[0].values.values())


class TestTable1:
    def test_rows_in_order(self):
        rows = reproduce.table1(benchmarks=("ft", "leela"), scale="test")
        assert [row.benchmark for row in rows] == ["ft", "leela"]
        for row in rows:
            assert 0.0 <= row.fraction <= 1.0
            assert row.wasted_bytes >= 0

    def test_leela_regime_even_at_test_scale(self):
        rows = reproduce.table1(benchmarks=("leela",), scale="test")
        assert rows[0].fraction > 0.5


class TestRomsBlowup:
    def test_comparison(self):
        comparison = reproduce.roms_representation_blowup(scale="test")
        assert comparison.benchmark == "roms"
        assert comparison.hot_streams > comparison.affinity_graph_nodes
