"""Shared fixtures: a small multi-path test program and helpers."""

from __future__ import annotations

import pytest

from repro.allocators import AddressSpace, SizeClassAllocator
from repro.machine import Machine, ProgramBuilder


class DemoProgram:
    """A tiny three-creator program (the paper's Figure 2 shape).

    ``main`` calls ``create_a`` / ``create_b`` / ``create_c``, each of which
    calls ``malloc`` from its own site; there is also a wrapper path
    (``helper -> wrapped_malloc -> malloc``) for wrapper-related tests.
    """

    def __init__(self) -> None:
        b = ProgramBuilder("demo")
        b.function("malloc", in_main_binary=False)
        self.main_a = b.call_site("main", "create_a")
        self.main_b = b.call_site("main", "create_b")
        self.main_c = b.call_site("main", "create_c")
        self.a_malloc = b.call_site("create_a", "malloc")
        self.b_malloc = b.call_site("create_b", "malloc")
        self.c_malloc = b.call_site("create_c", "malloc")
        self.main_helper = b.call_site("main", "helper")
        self.helper_wrap = b.call_site("helper", "wrapped_malloc")
        self.wrap_malloc = b.call_site("wrapped_malloc", "malloc")
        self.program = b.build()


@pytest.fixture
def demo() -> DemoProgram:
    return DemoProgram()


@pytest.fixture
def machine(demo: DemoProgram) -> Machine:
    space = AddressSpace(seed=0)
    return Machine(demo.program, SizeClassAllocator(space))


def alloc_via(machine: Machine, sites, size: int = 32):
    """Allocate *size* bytes through the nested *sites* chain."""
    from contextlib import ExitStack

    with ExitStack() as stack:
        for site in sites:
            stack.enter_context(machine.call(site))
        return machine.malloc(size)
