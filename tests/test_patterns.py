"""Tests for workload building blocks (patterns + the shared kernel)."""

import random

import pytest

from repro.allocators import AddressSpace, SizeClassAllocator
from repro.machine import Machine, ProgramBuilder
from repro.workloads._kernel import (
    ChaseSpec,
    StructureSpec,
    allocate_structures,
    chase_structures,
    release_structures,
)
from repro.workloads.patterns import (
    alloc_through,
    burst_plan,
    call_chain,
    chase_list,
    chase_pairs,
    free_all,
    interleave,
    partial_shuffle,
    sweep_arrays,
)


@pytest.fixture
def simple():
    b = ProgramBuilder("patterns")
    b.function("malloc", in_main_binary=False)
    outer = b.call_site("main", "maker")
    inner = b.call_site("maker", "malloc")
    program = b.build()
    machine = Machine(program, SizeClassAllocator(AddressSpace(0)))
    return machine, [outer, inner]


class TestCallHelpers:
    def test_call_chain_enters_all_sites(self, simple):
        machine, sites = simple
        with call_chain(machine, sites):
            assert [s.addr for s in machine.stack] == [s.addr for s in sites]
        assert machine.stack == []

    def test_alloc_through(self, simple):
        machine, sites = simple
        obj = alloc_through(machine, sites, 40)
        assert obj.size == 40
        assert machine.stack == []


class TestAccessHelpers:
    def test_chase_list_loads_and_work(self, simple):
        machine, sites = simple
        objects = [machine.malloc(64) for _ in range(5)]
        chase_list(machine, objects, loads_per_object=2, work=1.5)
        assert machine.metrics.loads == 10
        assert machine.metrics.compute_cycles == pytest.approx(15.0)

    def test_chase_list_store_every(self, simple):
        machine, _ = simple
        objects = [machine.malloc(64) for _ in range(6)]
        chase_list(machine, objects, loads_per_object=1, store_every=3)
        assert machine.metrics.stores == 2

    def test_chase_pairs(self, simple):
        machine, _ = simple
        pairs = [(machine.malloc(16), machine.malloc(64)) for _ in range(4)]
        chase_pairs(machine, pairs)
        assert machine.metrics.loads == 12  # 3 loads per pair

    def test_sweep_arrays(self, simple):
        machine, _ = simple
        arrays = [machine.malloc(64), machine.malloc(128)]
        sweep_arrays(machine, arrays, element_size=8)
        assert machine.metrics.loads == (64 + 128) // 8

    def test_free_all_skips_dead(self, simple):
        machine, _ = simple
        objects = [machine.malloc(16) for _ in range(3)]
        machine.free(objects[0])
        free_all(machine, objects)
        assert machine.objects.live_count == 0


class TestOrderingHelpers:
    def test_partial_shuffle_zero_is_identity(self):
        items = list(range(50))
        assert partial_shuffle(items, 0.0, random.Random(0)) == items

    def test_partial_shuffle_preserves_multiset(self):
        items = list(range(100))
        shuffled = partial_shuffle(items, 0.5, random.Random(0))
        assert sorted(shuffled) == items
        assert shuffled != items

    def test_partial_shuffle_does_not_mutate(self):
        items = list(range(10))
        partial_shuffle(items, 1.0, random.Random(0))
        assert items == list(range(10))

    def test_partial_shuffle_negative_rejected(self):
        with pytest.raises(ValueError):
            partial_shuffle([1], -0.5, random.Random(0))

    def test_interleave_preserves_per_sequence_order(self):
        rng = random.Random(1)
        merged = interleave(rng, ["a1", "a2", "a3"], ["b1", "b2"])
        assert [x for x in merged if x.startswith("a")] == ["a1", "a2", "a3"]
        assert [x for x in merged if x.startswith("b")] == ["b1", "b2"]
        assert len(merged) == 5

    def test_burst_plan_counts_and_runs(self):
        rng = random.Random(2)
        plan = burst_plan(rng, [("x", 10, 3), ("y", 6, 2)])
        assert plan.count("x") == 10
        assert plan.count("y") == 6
        # The two labels actually interleave (not one sorted block each).
        transitions = sum(1 for a, b in zip(plan, plan[1:]) if a != b)
        assert transitions >= 2

    def test_burst_plan_invalid_burst(self):
        with pytest.raises(ValueError):
            burst_plan(random.Random(0), [("x", 5, 0)])


class TestKernel:
    def _specs(self, sites):
        outer, inner = sites
        return [
            StructureSpec("hot", 20, 48, [outer, inner], cells=2, cell_size=16,
                          cell_chain=[outer, inner]),
            StructureSpec("cold", 10, 48, [outer, inner]),
        ]

    def test_allocate_structures_counts(self, simple):
        machine, sites = simple
        groups = allocate_structures(machine, random.Random(0), self._specs(sites))
        assert len(groups["hot"]) == 20
        assert len(groups["cold"]) == 10
        assert all(len(cells) == 2 for _, cells in groups["hot"])
        assert machine.metrics.allocs == 20 * 3 + 10

    def test_chase_structures_interleaves_cell_and_node(self, simple):
        machine, sites = simple
        groups = allocate_structures(machine, random.Random(0), self._specs(sites))
        before = machine.metrics.loads
        chase_structures(
            machine, groups["hot"], ChaseSpec("hot", passes=2, node_loads=2),
            1.0, random.Random(0),
        )
        # 2 passes x 20 items x (2 cells + 2 node loads)
        assert machine.metrics.loads - before == 2 * 20 * 4

    def test_chase_with_table(self, simple):
        machine, sites = simple
        groups = allocate_structures(machine, random.Random(0), self._specs(sites))
        table = machine.malloc(4096)
        before = machine.metrics.loads
        chase_structures(
            machine, groups["hot"],
            ChaseSpec("hot", passes=1, node_loads=1, table_every=4),
            1.0, random.Random(0), table=table,
        )
        # 20 items x (2 cells + 2 interleaved node loads) + 5 table loads
        assert machine.metrics.loads - before == 20 * 4 + 5

    def test_release_structures(self, simple):
        machine, sites = simple
        groups = allocate_structures(machine, random.Random(0), self._specs(sites))
        release_structures(machine, groups)
        assert machine.objects.live_count == 0
