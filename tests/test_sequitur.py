"""Unit + property tests for the SEQUITUR implementation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.hds import Rule, Sequitur


class TestClassicExamples:
    def test_abcabdabcabd(self):
        g = Sequitur.from_sequence("abcabdabcabd")
        assert g.expand() == list("abcabdabcabd")
        g.check_invariants()
        # The classic grammar: S -> AA, A -> BcBd, B -> ab.
        assert len(g.rules) == 3

    def test_no_repetition_yields_flat_start_rule(self):
        g = Sequitur.from_sequence([1, 2, 3, 4, 5])
        assert len(g.rules) == 1
        assert g.start.body() == [1, 2, 3, 4, 5]

    def test_simple_pair_repetition(self):
        g = Sequitur.from_sequence([1, 2, 9, 1, 2])
        assert g.expand() == [1, 2, 9, 1, 2]
        bodies = [rule.body() for rule in g.rules if rule is not g.start]
        assert [1, 2] in bodies

    def test_repeated_block_compresses(self):
        block = list(range(50))
        g = Sequitur.from_sequence(block * 4)
        assert g.expand() == block * 4
        assert len(g.start) < 200  # start rule much shorter than input

    def test_empty_sequence(self):
        g = Sequitur()
        assert g.expand() == []
        assert len(g.rules) == 1

    def test_single_symbol(self):
        g = Sequitur.from_sequence([7])
        assert g.expand() == [7]

    def test_run_of_identical_symbols(self):
        seq = [5] * 40
        g = Sequitur.from_sequence(seq)
        assert g.expand() == seq

    def test_rule_objects_rejected_as_terminals(self):
        g = Sequitur()
        with pytest.raises(TypeError):
            g.push(Rule(99))

    def test_expand_with_limit(self):
        g = Sequitur.from_sequence("abcabdabcabd")
        assert g.expand(limit=5) == list("abcab")

    def test_rule_utility_no_single_use_rules(self):
        rng = random.Random(0)
        seq = [rng.randrange(6) for _ in range(500)]
        g = Sequitur.from_sequence(seq)
        for rule in g.rules:
            if rule is not g.start:
                assert rule.refcount >= 2

    def test_uses_tracking_consistent_with_refcount(self):
        rng = random.Random(1)
        seq = [rng.randrange(5) for _ in range(400)]
        g = Sequitur.from_sequence(seq)
        for rule in g.rules:
            if rule is not g.start:
                assert len(rule.uses) == rule.refcount


class TestSequiturProperties:
    @given(st.lists(st.integers(0, 6), min_size=0, max_size=300))
    @settings(max_examples=200, deadline=None)
    def test_lossless(self, seq):
        g = Sequitur.from_sequence(seq)
        assert g.expand() == seq

    @given(st.lists(st.integers(0, 3), min_size=0, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_invariants_hold(self, seq):
        g = Sequitur.from_sequence(seq)
        g.check_invariants()

    @given(st.lists(st.integers(0, 2), min_size=10, max_size=120), st.integers(2, 5))
    @settings(max_examples=50, deadline=None)
    def test_lossless_on_repeated_input(self, block, repeats):
        seq = block * repeats
        g = Sequitur.from_sequence(seq)
        assert g.expand() == seq
        g.check_invariants()

    @given(st.text(alphabet="ab", min_size=0, max_size=150))
    @settings(max_examples=100, deadline=None)
    def test_binary_alphabet(self, text):
        g = Sequitur.from_sequence(text)
        assert g.expand() == list(text)
