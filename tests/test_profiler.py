"""Tests for the Profiler listener and ProfileResult."""

import pytest

from repro.allocators import AddressSpace, SizeClassAllocator
from repro.core import HaloParams, profile_workload
from repro.machine import Machine
from repro.profiling import AffinityParams, PIN_SLOWDOWN_ESTIMATE, Profiler

from conftest import alloc_via


@pytest.fixture
def profiled(demo):
    profiler = Profiler(demo.program, AffinityParams(), record_trace=True)
    machine = Machine(
        demo.program, SizeClassAllocator(AddressSpace(0)), listeners=[profiler]
    )
    return demo, machine, profiler


class TestContextAttribution:
    def test_distinct_paths_distinct_contexts(self, profiled):
        demo, machine, profiler = profiled
        a = alloc_via(machine, [demo.main_a, demo.a_malloc])
        b = alloc_via(machine, [demo.main_b, demo.b_malloc])
        result = profiler.result()
        assert result.object_context[a.oid] != result.object_context[b.oid]

    def test_same_path_same_context(self, profiled):
        demo, machine, profiler = profiled
        a1 = alloc_via(machine, [demo.main_a, demo.a_malloc])
        a2 = alloc_via(machine, [demo.main_a, demo.a_malloc])
        result = profiler.result()
        assert result.object_context[a1.oid] == result.object_context[a2.oid]

    def test_immediate_site_is_raw_stack_top(self, profiled):
        demo, machine, profiler = profiled
        a = alloc_via(machine, [demo.main_a, demo.a_malloc])
        w = alloc_via(machine, [demo.main_helper, demo.helper_wrap, demo.wrap_malloc])
        result = profiler.result()
        assert result.object_site[a.oid] == demo.a_malloc.addr
        assert result.object_site[w.oid] == demo.wrap_malloc.addr

    def test_context_stats(self, profiled):
        demo, machine, profiler = profiled
        alloc_via(machine, [demo.main_a, demo.a_malloc], 40)
        obj = alloc_via(machine, [demo.main_a, demo.a_malloc], 24)
        machine.free(obj)
        result = profiler.result()
        cid = result.object_context[obj.oid]
        stats = result.context_stats[cid]
        assert stats.allocs == 2
        assert stats.bytes_allocated == 64
        assert stats.max_object_size == 40
        assert stats.frees == 1

    def test_describe_context(self, profiled):
        demo, machine, profiler = profiled
        obj = alloc_via(machine, [demo.main_a, demo.a_malloc])
        result = profiler.result()
        cid = result.object_context[obj.oid]
        assert "create_a" in result.describe_context(cid)


class TestTraceRecording:
    def test_macro_level_trace(self, profiled):
        demo, machine, profiler = profiled
        a = alloc_via(machine, [demo.main_a, demo.a_malloc])
        b = alloc_via(machine, [demo.main_b, demo.b_malloc])
        machine.load(a)
        machine.load(a)  # deduped
        machine.load(b)
        machine.load(a)
        result = profiler.result()
        # Trace includes the two allocation stores?  No stores were issued:
        # only the loads appear.
        assert result.trace == [a.oid, b.oid, a.oid]

    def test_large_objects_become_unique_breakers(self, profiled):
        demo, machine, profiler = profiled
        big = alloc_via(machine, [demo.main_c, demo.c_malloc], 8192)
        small = alloc_via(machine, [demo.main_a, demo.a_malloc])
        machine.load(small)
        machine.load(big, 0, 8)
        machine.load(small)
        machine.load(big, 64, 8)
        result = profiler.result()
        breakers = [t for t in result.trace if t < 0]
        assert len(breakers) == 2
        assert len(set(breakers)) == 2  # unique every time

    def test_trace_disabled_by_default(self, demo):
        profiler = Profiler(demo.program)
        assert profiler.result().trace is None

    def test_machine_access_counter(self, profiled):
        demo, machine, profiler = profiled
        obj = alloc_via(machine, [demo.main_a, demo.a_malloc])
        machine.load(obj)
        machine.load(obj)
        assert profiler.result().machine_accesses == 2

    def test_overhead_estimate_reported(self, demo):
        assert Profiler(demo.program).estimated_overhead_factor == PIN_SLOWDOWN_ESTIMATE


class TestProfileWorkloadHelper:
    def test_profile_scale_defaults_to_test(self):
        from repro.workloads import get_workload

        workload = get_workload("ft")
        profile = profile_workload(workload, HaloParams())
        assert profile.total_accesses > 0
        assert profile.graph.total_accesses == profile.total_accesses

    def test_immediate_site_of_context(self, profiled):
        demo, machine, profiler = profiled
        obj = alloc_via(machine, [demo.main_a, demo.a_malloc])
        result = profiler.result()
        cid = result.object_context[obj.oid]
        assert result.immediate_site_of_context(cid) == demo.a_malloc.addr
