"""Tests for address-trace capture and multi-geometry replay."""

import numpy as np
import pytest

from repro.allocators import AddressSpace, SizeClassAllocator
from repro.cache import CacheHierarchy, HierarchyConfig
from repro.trace.access import AccessTrace, AccessTraceRecorder, replay_geometries
from repro.machine import Machine
from repro.workloads import get_workload


class TestAccessTrace:
    def test_line_stream_simple(self):
        trace = AccessTrace(np.array([0, 64, 128]), np.array([8, 8, 8]))
        assert trace.line_stream(64).tolist() == [0, 1, 2]

    def test_line_stream_straddle(self):
        trace = AccessTrace(np.array([60]), np.array([8]))
        assert trace.line_stream(64).tolist() == [0, 1]

    def test_line_stream_large_access(self):
        trace = AccessTrace(np.array([0]), np.array([256]))
        assert trace.line_stream(64).tolist() == [0, 1, 2, 3]

    def test_empty(self):
        trace = AccessTrace(np.array([], dtype=np.int64), np.array([], dtype=np.int32))
        assert len(trace) == 0
        assert trace.line_stream().size == 0
        assert trace.replay().accesses == 0

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            AccessTrace(np.array([1, 2]), np.array([8]))


class TestReplayEquivalence:
    """Replaying a captured trace must reproduce the live run's counters."""

    @pytest.fixture(scope="class")
    def captured(self):
        workload = get_workload("ft")
        recorder = AccessTraceRecorder()
        memory = CacheHierarchy()
        machine = Machine(
            workload.program,
            SizeClassAllocator(AddressSpace(3)),
            memory=memory,
            listeners=[recorder],
        )
        workload.run(machine, "test")
        return memory.snapshot(), recorder.trace()

    def test_miss_counters_match_live_run(self, captured):
        live, trace = captured
        replayed = trace.replay()
        assert replayed.accesses == live.accesses
        assert replayed.l1_misses == live.l1_misses
        assert replayed.l2_misses == live.l2_misses
        assert replayed.l3_misses == live.l3_misses
        assert replayed.tlb_misses == live.tlb_misses

    def test_smaller_caches_miss_more(self, captured):
        _, trace = captured
        lean = HierarchyConfig(
            l1_size=8 * 1024, l1_assoc=4,
            l2_size=128 * 1024, l2_assoc=8,
            l3_size=2048 * 1024, l3_assoc=8,
            tlb_entries=16,
        )
        default_stats, lean_stats = replay_geometries(trace, [HierarchyConfig(), lean])
        assert lean_stats.l1_misses >= default_stats.l1_misses
        assert lean_stats.l2_misses >= default_stats.l2_misses
        assert lean_stats.tlb_misses >= default_stats.tlb_misses
