"""Unit tests for the Machine, heap discipline, and the state vector."""

import pytest

from repro.allocators import AddressSpace, SizeClassAllocator
from repro.machine import GroupStateVector, HeapError, Listener, Machine, ProgramError

from conftest import alloc_via


class RecordingListener(Listener):
    def __init__(self):
        self.events = []

    def on_call(self, machine, site):
        self.events.append(("call", site.addr))

    def on_return(self, machine, site):
        self.events.append(("return", site.addr))

    def on_alloc(self, machine, obj):
        self.events.append(("alloc", obj.oid, obj.size))

    def on_free(self, machine, obj):
        self.events.append(("free", obj.oid))

    def on_access(self, machine, obj, offset, size, is_store):
        self.events.append(("store" if is_store else "load", obj.oid, offset, size))

    def on_finish(self, machine):
        self.events.append(("finish",))


class TestCallStack:
    def test_nested_calls_maintain_stack(self, demo, machine):
        with machine.call(demo.main_a):
            assert [s.addr for s in machine.stack] == [demo.main_a.addr]
            with machine.call(demo.a_malloc):
                assert len(machine.stack) == 2
            assert len(machine.stack) == 1
        assert machine.stack == []

    def test_stack_unwound_on_exception(self, demo, machine):
        with pytest.raises(RuntimeError):
            with machine.call(demo.main_a):
                raise RuntimeError("boom")
        assert machine.stack == []

    def test_foreign_site_rejected(self, demo, machine):
        from repro.machine import ProgramBuilder

        other = ProgramBuilder("other")
        foreign = other.call_site("main", "f")
        with pytest.raises(ProgramError):
            with machine.call(foreign):
                pass

    def test_call_by_address(self, demo, machine):
        with machine.call(demo.main_a.addr):
            assert machine.stack[-1] is demo.main_a

    def test_call_metric(self, demo, machine):
        with machine.call(demo.main_a):
            pass
        assert machine.metrics.calls == 1


class TestHeapOperations:
    def test_malloc_returns_live_object(self, machine):
        obj = machine.malloc(64)
        assert obj.alive and obj.size == 64
        assert machine.objects.live_count == 1

    def test_zero_size_malloc_rejected(self, machine):
        with pytest.raises(HeapError):
            machine.malloc(0)

    def test_free_marks_dead(self, machine):
        obj = machine.malloc(64)
        machine.free(obj)
        assert not obj.alive
        assert machine.objects.live_count == 0

    def test_double_free_rejected(self, machine):
        obj = machine.malloc(64)
        machine.free(obj)
        with pytest.raises(HeapError):
            machine.free(obj)

    def test_use_after_free_rejected(self, machine):
        obj = machine.malloc(64)
        machine.free(obj)
        with pytest.raises(HeapError):
            machine.load(obj, 0, 8)

    def test_out_of_bounds_access_rejected(self, machine):
        obj = machine.malloc(16)
        with pytest.raises(HeapError):
            machine.load(obj, 12, 8)

    def test_calloc_touches_pages(self, machine):
        before = machine.allocator.space.resident_bytes
        machine.calloc(1024, 8)
        assert machine.allocator.space.resident_bytes > before

    def test_realloc_grows(self, machine):
        obj = machine.malloc(16)
        machine.store(obj, 0, 8)
        machine.realloc(obj, 4096)
        assert obj.size == 4096
        machine.load(obj, 4000, 8)

    def test_realloc_shrink_keeps_address(self, machine):
        obj = machine.malloc(64)
        addr = obj.addr
        machine.realloc(obj, 32)
        assert obj.addr == addr

    def test_alloc_seq_is_monotonic(self, machine):
        a = machine.malloc(8)
        b = machine.malloc(8)
        assert b.alloc_seq == a.alloc_seq + 1

    def test_allocations_do_not_overlap(self, machine):
        objects = [machine.malloc(24) for _ in range(200)]
        spans = sorted((o.addr, o.end()) for o in objects)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start


class TestListeners:
    def test_event_sequence(self, demo, machine):
        listener = RecordingListener()
        machine.listeners.append(listener)
        obj = alloc_via(machine, [demo.main_a, demo.a_malloc], 32)
        machine.load(obj, 0, 8)
        machine.store(obj, 8, 8)
        machine.free(obj)
        machine.finish()
        kinds = [event[0] for event in listener.events]
        assert kinds == ["call", "call", "alloc", "return", "return", "load", "store", "free", "finish"]

    def test_access_details(self, demo, machine):
        listener = RecordingListener()
        machine.listeners.append(listener)
        obj = machine.malloc(32)
        machine.load(obj, 16, 4)
        assert ("load", obj.oid, 16, 4) in listener.events


class TestInstrumentation:
    def test_bits_toggle_around_calls(self, demo):
        space = AddressSpace(0)
        sv = GroupStateVector()
        machine = Machine(
            demo.program,
            SizeClassAllocator(space),
            instrumentation={demo.main_a.addr: 0, demo.main_b.addr: 1},
            state_vector=sv,
        )
        assert sv.value == 0
        with machine.call(demo.main_a):
            assert sv.test(0) and not sv.test(1)
            with machine.call(demo.main_b):
                assert sv.value == 0b11
            assert sv.value == 0b01
        assert sv.value == 0

    def test_uninstrumented_sites_do_not_toggle(self, demo):
        space = AddressSpace(0)
        sv = GroupStateVector()
        machine = Machine(
            demo.program,
            SizeClassAllocator(space),
            instrumentation={demo.main_a.addr: 0},
            state_vector=sv,
        )
        with machine.call(demo.main_c):
            assert sv.value == 0
        assert machine.metrics.instrumentation_toggles == 0

    def test_toggle_count(self, demo):
        space = AddressSpace(0)
        machine = Machine(
            demo.program,
            SizeClassAllocator(space),
            instrumentation={demo.main_a.addr: 0},
            state_vector=GroupStateVector(),
        )
        for _ in range(5):
            with machine.call(demo.main_a):
                pass
        assert machine.metrics.instrumentation_toggles == 10

    def test_recursion_clears_bit_on_inner_return(self, demo):
        # Faithful to the paper's plain set/unset scheme: the inner return
        # clears the bit even though an outer activation is still live.
        space = AddressSpace(0)
        sv = GroupStateVector()
        machine = Machine(
            demo.program,
            SizeClassAllocator(space),
            instrumentation={demo.main_a.addr: 0},
            state_vector=sv,
        )
        with machine.call(demo.main_a):
            with machine.call(demo.main_a):
                assert sv.test(0)
            assert not sv.test(0)


class TestMetrics:
    def test_work_accumulates(self, machine):
        machine.work(10.5)
        machine.work(2.5)
        assert machine.metrics.compute_cycles == 13.0

    def test_access_counters(self, machine):
        obj = machine.malloc(64)
        machine.load(obj)
        machine.load(obj)
        machine.store(obj)
        assert machine.metrics.loads == 2
        assert machine.metrics.stores == 1
        assert machine.metrics.accesses == 3
