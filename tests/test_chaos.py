"""End-to-end chaos suite: the pipeline under scheduled faults.

Every test here runs a real slice of the evaluation pipeline with a
fixed-seed :class:`FaultPlan` injecting the failure modes catalogued in
``docs/FAILURE_MODES.md`` — corrupted caches, dying workers, bad traces,
exhausted pools — and asserts the run *degrades* (retries, falls back,
reports) instead of dying or silently producing different numbers.

All tests carry the ``chaos`` marker so CI can run them as a dedicated
job (``pytest -m chaos``); they also run in the default suite.
"""

import logging
import zlib

import pytest

from repro.core.artifact_cache import ArtifactCache
from repro.faults import FaultPlan, fault_plan_active, inject_into_path
from repro.harness.checkpoint import CheckpointJournal
from repro.harness.parallel import evaluate_all_parallel, run_trials_parallel
from repro.harness.prepare import PhaseTimes, get_or_record_trace, prepare_workload
from repro.harness.runner import measure_halo
from repro.trace.format import EventTrace
from repro.workloads.base import get_workload

pytestmark = pytest.mark.chaos

BENCHMARKS = ["deepsjeng", "health", "art"]
BENCH = "deepsjeng"


def _evaluation_metrics(evaluation):
    return {
        config: (r.cycles, r.l1_misses)
        for config in ("baseline", "halo", "hds")
        for r in (getattr(evaluation, config),)
    }


class TestChaosMatrix:
    def test_corrupted_cache_and_killed_worker_reproduce_clean_run(self, tmp_path):
        """The acceptance run: ≥3 benchmarks, damaged cache, one killed cell.

        Only the faulted cells may degrade (re-record, retry); the final
        numbers must equal the clean run's, and nothing may end up in the
        failure report.
        """
        cache = ArtifactCache(tmp_path / "cache")
        clean = evaluate_all_parallel(
            BENCHMARKS, trials=1, scale="test", include_random=False,
            jobs=2, cache=cache,
        )
        damaged = inject_into_path(
            cache.root, FaultPlan(seed=1234, corrupt_mode="bitflip", corrupt_rate=1.0)
        )
        assert damaged, "the warm cache should have had entries to corrupt"

        times = PhaseTimes()
        failures = []
        plan = FaultPlan(
            seed=1234,
            kill_tasks=("measure:health:halo:test:1",),
            max_kill_attempts=1,
        )
        chaotic = evaluate_all_parallel(
            BENCHMARKS, trials=1, scale="test", include_random=False,
            jobs=2, cache=cache, phase_times=times,
            fault_plan=plan, failures=failures,
        )

        assert failures == []
        assert times.task_retries >= 1  # the killed cell came back
        assert times.cache_misses > 0  # the corrupted entries were rebuilt
        assert set(chaotic) == set(clean) == set(BENCHMARKS)
        for name in BENCHMARKS:
            assert _evaluation_metrics(chaotic[name]) == _evaluation_metrics(clean[name])
            assert chaotic[name].halo_groups == clean[name].halo_groups


class TestKillAndResume:
    def test_interrupted_run_resumes_to_identical_result(self, tmp_path):
        clean = evaluate_all_parallel(
            [BENCH], trials=1, scale="test", include_random=False, jobs=2
        )[BENCH]

        journal = CheckpointJournal(tmp_path / "ckpt.journal")
        failures = []
        plan = FaultPlan(
            kill_tasks=(f"measure:{BENCH}:hds:test:1",), max_kill_attempts=99
        )
        # jobs=1 keeps exactly one cell in flight, so the repeated kill
        # takes out only its own task — with max_retries=0, an innocent
        # bystander sharing the broken pool would die alongside it.
        interrupted = evaluate_all_parallel(
            [BENCH], trials=1, scale="test", include_random=False, jobs=1,
            fault_plan=plan, max_retries=0, checkpoint=journal, failures=failures,
        )
        # The hds config lost its only counted seed, so the benchmark is
        # reported failed — but every *other* cell was journalled.
        assert interrupted == {}
        assert len(failures) == 1
        done = journal.load()
        assert f"prepare:{BENCH}" in done
        assert f"measure:{BENCH}:hds:test:1" not in done
        assert len(done) == 6  # prepare + 3 configs x 2 seeds - the killed cell

        resumed = evaluate_all_parallel(
            [BENCH], trials=1, scale="test", include_random=False, jobs=2,
            checkpoint=journal, resume=True,
        )[BENCH]
        assert len(journal.load()) == 7
        assert _evaluation_metrics(resumed) == _evaluation_metrics(clean)
        assert resumed.halo_groups == clean.halo_groups
        assert resumed.graph_nodes == clean.graph_nodes


class TestCorruptTraceFallback:
    def test_replay_falls_back_to_direct_execution(self, caplog):
        trace = get_or_record_trace(BENCH)
        tampered = bytearray(trace.body)
        tampered[len(tampered) // 2] ^= 0xFF
        corrupt = EventTrace(trace.header, bytes(tampered), flags=trace.flags)
        assert not corrupt.verify()

        with caplog.at_level(logging.WARNING, logger="repro.harness.prepare"):
            degraded = prepare_workload(
                BENCH, trace=corrupt, use_trace=True, include_hds=False
            )
        assert any("falling back to direct execution" in r.message for r in caplog.records)

        direct = prepare_workload(BENCH, use_trace=False, include_hds=False)
        assert [sorted(g.members) for g in degraded.halo.groups] == [
            sorted(g.members) for g in direct.halo.groups
        ]
        workload = get_workload(BENCH)
        fallback_run = measure_halo(workload, degraded.halo, scale="test", seed=0)
        direct_run = measure_halo(workload, direct.halo, scale="test", seed=0)
        assert fallback_run.cycles == direct_run.cycles
        assert fallback_run.cache.l1_misses == direct_run.cache.l1_misses

    def test_cached_tampered_trace_is_re_recorded(self, tmp_path, caplog):
        from repro.harness.prepare import trace_key_for

        cache = ArtifactCache(tmp_path / "cache")
        trace = get_or_record_trace(BENCH, cache=cache)
        tampered = bytearray(trace.body)
        tampered[0] ^= 0xFF
        cache.put(
            trace_key_for(BENCH),
            EventTrace(trace.header, bytes(tampered), flags=trace.flags),
        )

        times = PhaseTimes()
        with caplog.at_level(logging.WARNING, logger="repro.harness.prepare"):
            recovered = get_or_record_trace(BENCH, cache=cache, times=times)
        assert any("re-recording" in r.message for r in caplog.records)
        assert recovered.verify()
        assert times.cache_misses == 1
        assert times.trace_records == 1
        assert zlib.crc32(recovered.body) == trace.header.crc32


class TestPoolExhaustion:
    def test_forced_exhaustion_degrades_but_serves_everything(self):
        # health is the heaviest grouper at test scale, so a one-chunk
        # budget genuinely runs its pools dry.
        prepared = prepare_workload("health", use_trace=False, include_hds=False)
        workload = get_workload("health")
        healthy = measure_halo(workload, prepared.halo, scale="test", seed=0)
        assert healthy.degraded_allocs == 0

        with fault_plan_active(FaultPlan(group_max_chunks=1)):
            squeezed = measure_halo(workload, prepared.halo, scale="test", seed=0)
        # The run completed — every request was served — but the grouped
        # pools ran dry and the overflow went to the fallback allocator.
        assert squeezed.degraded_allocs > 0
        assert squeezed.allocs == healthy.allocs
        assert squeezed.frees == healthy.frees


class TestRandomizedPlans:
    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_random_faults_complete_or_report_every_cell(self, tmp_path, seed):
        """Chaos soak: rate-based faults, fixed seeds, full accounting.

        Under random kills, stalls-turned-decode-errors, and state flips,
        every cell must end either measured or in the failure report —
        never lost, never hanging the engine.
        """
        plan = FaultPlan(
            seed=seed,
            worker_kill_rate=0.3,
            trace_decode_error_rate=0.3,
            state_flip_rate=0.02,
        )
        failures = []
        try:
            result = run_trials_parallel(
                BENCH, "halo", trials=2, scale="test", jobs=2,
                discard_first=False, cache=ArtifactCache(tmp_path / "cache"),
                fault_plan=plan, max_retries=3, failures=failures,
            )
            survived = len(result.measurements)
        except RuntimeError:
            survived = 0
        measure_failures = [f for f in failures if f.kind == "measure"]
        if any(f.kind == "prepare" for f in failures):
            assert survived == 0
        else:
            assert survived + len(measure_failures) == 2


class TestSanitizedEvaluation:
    """Serial and parallel evaluations agree under ``--sanitize``.

    The sanitizer runs in fail-fast mode, so a single invariant or oracle
    violation anywhere in the matrix would abort a cell and surface either
    as an exception (serial) or a failure-report entry (parallel); a clean
    pass over the full benchmark suite is the zero-findings assertion.
    """

    def test_full_suite_serial_vs_parallel(self, tmp_path):
        from repro import obs
        from repro.harness.reproduce import PAPER_BENCHMARKS, evaluate_all
        from repro.sanitize import SanitizerConfig, sanitizer_active

        cache = ArtifactCache(tmp_path / "cache")
        failures = []
        times = PhaseTimes()
        with sanitizer_active(SanitizerConfig(check_interval=512)):
            with obs.collecting() as registry:
                serial = evaluate_all(
                    PAPER_BENCHMARKS, trials=1, scale="test",
                    include_random=False, cache=cache,
                )
            parallel = evaluate_all(
                PAPER_BENCHMARKS, trials=1, scale="test",
                include_random=False, jobs=2, cache=cache,
                phase_times=times, failures=failures,
            )

        assert failures == []
        assert set(serial) == set(parallel) == set(PAPER_BENCHMARKS)
        for name in PAPER_BENCHMARKS:
            assert _evaluation_metrics(serial[name]) == _evaluation_metrics(parallel[name])
            assert serial[name].halo_groups == parallel[name].halo_groups

        # The sanitizer really ran, on both sides of the fork: the serial
        # pass counted its checks in the coordinator registry, the parallel
        # pass shipped worker counters back through PhaseTimes.metrics.
        coordinator = registry.snapshot().counters
        assert coordinator.get("sanitize.checks", 0) > 0
        assert coordinator.get("sanitize.findings", 0) == 0
        assert times.metrics is not None
        workers = times.metrics.counters
        assert workers.get("sanitize.checks", 0) > 0
        assert workers.get("sanitize.shadow.ops", 0) > 0
        assert workers.get("sanitize.findings", 0) == 0


class TestColumnarDifferential:
    """The columnar engine stays bit-identical to the per-event oracle
    even while faults and sanitizers reshape the run around it."""

    #: health's HALO artifact actually groups at test scale, so the
    #: state-flip selector corruption has placements to perturb.
    DIFF_BENCH = "health"

    @pytest.fixture(scope="class")
    def halo_inputs(self, tmp_path_factory):
        cache = ArtifactCache(tmp_path_factory.mktemp("cache"))
        trace = get_or_record_trace(self.DIFF_BENCH, cache=cache)
        prepared = prepare_workload(self.DIFF_BENCH, cache=cache, trace=trace)
        return get_workload(self.DIFF_BENCH), trace, prepared.halo

    def test_state_flip_plan_hits_both_engines_identically(self, halo_inputs):
        """State-corruption faults are a pure function of the allocation
        index, so the engines must agree on the *faulted* run too."""
        workload, trace, halo = halo_inputs
        plan = FaultPlan(seed=77, state_flip_rate=0.5)
        kwargs = dict(scale="test", seed=1, trace=trace)
        clean = measure_halo(workload, halo, **kwargs, engine="event")
        with fault_plan_active(plan):
            event = measure_halo(workload, halo, **kwargs, engine="event")
            columnar = measure_halo(workload, halo, **kwargs, engine="columnar")
        assert columnar == event
        # The plan really fired: flipped selector states change which
        # allocations the grouped pools capture.
        assert (event.grouped_allocs, event.forwarded_allocs) != (
            clean.grouped_allocs, clean.forwarded_allocs)

    def test_sanitizer_degrades_columnar_to_event_with_same_numbers(self, halo_inputs):
        from repro import obs
        from repro.harness.runner import resolve_engine
        from repro.sanitize import SanitizerConfig, sanitizer_active

        workload, trace, halo = halo_inputs
        kwargs = dict(scale="test", seed=1, trace=trace)
        plain = measure_halo(workload, halo, **kwargs, engine="columnar")
        with sanitizer_active(SanitizerConfig(check_interval=512)):
            assert resolve_engine("columnar", trace) == "event"
            with obs.collecting() as registry:
                sanitized = measure_halo(workload, halo, **kwargs, engine="columnar")
        counters = registry.snapshot().counters
        # The shadow heap observed the run, found nothing, and the
        # degraded-to-event measurement still matches the columnar one.
        assert counters.get("sanitize.shadow.ops", 0) > 0
        assert counters.get("sanitize.findings", 0) == 0
        assert sanitized == plain
