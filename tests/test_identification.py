"""Unit tests for Figure 10 selector synthesis and the runtime matcher."""

import pytest

from repro.core import (
    CompiledMatcher,
    Group,
    GroupSelector,
    NeverMatch,
    SelectorMatchError,
    monitored_sites,
    synthesise_selectors,
)
from repro.profiling import ContextTable


def setup_contexts(chains):
    """Intern *chains*; returns (table, list of cids in order)."""
    table = ContextTable()
    return table, [table.intern(tuple(chain)) for chain in chains]


class TestSynthesis:
    def test_single_member_distinguished_by_unique_site(self):
        table, (hot, cold) = setup_contexts([(1, 2, 3), (1, 2, 9)])
        groups = [Group(0, frozenset({hot}), 10.0, 100)]
        result = synthesise_selectors(groups, table, {hot: 0, cold: None})
        selector = result.selectors[0]
        assert selector.matches_chain((1, 2, 3))
        assert not selector.matches_chain((1, 2, 9))
        assert result.residual_conflicts[0] == 0

    def test_selector_uses_minimal_sites(self):
        # Site 3 alone distinguishes the member: one site suffices.
        table, (hot, cold) = setup_contexts([(1, 2, 3), (1, 2, 9)])
        groups = [Group(0, frozenset({hot}), 10.0, 100)]
        result = synthesise_selectors(groups, table, {hot: 0, cold: None})
        assert result.selectors[0].conjunctions == (frozenset({3}),)

    def test_conjunction_grows_until_conflicts_resolved(self):
        # No single site separates hot from both colds; a pair does.
        table, (hot, cold1, cold2) = setup_contexts(
            [(1, 2), (1, 9), (8, 2)]
        )
        groups = [Group(0, frozenset({hot}), 10.0, 100)]
        result = synthesise_selectors(
            groups, table, {hot: 0, cold1: None, cold2: None}
        )
        selector = result.selectors[0]
        assert selector.matches_chain((1, 2))
        assert not selector.matches_chain((1, 9))
        assert not selector.matches_chain((8, 2))

    def test_dnf_over_members(self):
        table, (m1, m2, cold) = setup_contexts([(1, 2), (3, 4), (5, 6)])
        groups = [Group(0, frozenset({m1, m2}), 10.0, 100)]
        result = synthesise_selectors(groups, table, {m1: 0, m2: 0, cold: None})
        selector = result.selectors[0]
        assert selector.matches_chain((1, 2))
        assert selector.matches_chain((3, 4))
        assert not selector.matches_chain((5, 6))

    def test_residual_conflicts_when_indistinguishable(self):
        table, (hot, twin) = setup_contexts([(1, 2), (1, 2, 3)])
        # twin's chain is a superset: every site of hot appears in twin.
        groups = [Group(0, frozenset({hot}), 10.0, 100)]
        result = synthesise_selectors(groups, table, {hot: 0, twin: None})
        assert result.residual_conflicts[0] >= 1
        assert result.selectors[0].matches_chain((1, 2, 3))  # false positive

    def test_popular_groups_processed_first(self):
        table, (a, b) = setup_contexts([(1, 2), (3, 4)])
        groups = [
            Group(0, frozenset({a}), 5.0, 10),
            Group(1, frozenset({b}), 5.0, 999),
        ]
        result = synthesise_selectors(groups, table, {a: 0, b: 1})
        assert result.selectors[0].gid == 1  # most popular first

    def test_other_groups_count_as_conflicts_until_processed(self):
        # Group B is less popular; its selector must exclude nothing from
        # already-identified group A (A is in the ignore set by then).
        table, (a, b) = setup_contexts([(1, 2), (1, 3)])
        groups = [
            Group(0, frozenset({a}), 5.0, 100),
            Group(1, frozenset({b}), 5.0, 10),
        ]
        result = synthesise_selectors(groups, table, {a: 0, b: 1})
        by_gid = {s.gid: s for s in result.selectors}
        # Group 0 processed first: must exclude b's chain.
        assert not by_gid[0].matches_chain((1, 3))

    def test_site_allowed_filter(self):
        table, (hot, cold) = setup_contexts([(1, 3), (1, 9)])
        groups = [Group(0, frozenset({hot}), 10.0, 100)]
        result = synthesise_selectors(
            groups, table, {hot: 0, cold: None}, site_allowed=lambda a: a != 3
        )
        # Site 3 is off limits; the conjunction falls back to site 1 even
        # though it conflicts with the cold context.
        assert result.selectors[0].sites == frozenset({1})
        assert result.residual_conflicts[0] >= 1

    def test_all_sites_disallowed_yields_empty_selector(self):
        table, (hot,) = setup_contexts([(1, 2)])
        groups = [Group(0, frozenset({hot}), 10.0, 100)]
        result = synthesise_selectors(
            groups, table, {hot: 0}, site_allowed=lambda a: False
        )
        assert result.selectors[0].conjunctions == ()
        assert not result.selectors[0].matches_chain((1, 2))

    def test_no_groups(self):
        table = ContextTable()
        result = synthesise_selectors([], table, {})
        assert result.selectors == ()


class TestMonitoredSites:
    def test_union(self):
        selectors = [
            GroupSelector(0, (frozenset({1, 2}),)),
            GroupSelector(1, (frozenset({2, 3}), frozenset({4}))),
        ]
        assert monitored_sites(selectors) == frozenset({1, 2, 3, 4})


class TestCompiledMatcher:
    def test_matches_when_bits_set(self):
        selectors = [GroupSelector(0, (frozenset({0x10, 0x20}),))]
        matcher = CompiledMatcher(selectors, {0x10: 0, 0x20: 1})
        assert matcher.match(0b11) == 0
        assert matcher.match(0b01) is None
        assert matcher.match(0b10) is None

    def test_extra_bits_do_not_prevent_match(self):
        selectors = [GroupSelector(0, (frozenset({0x10}),))]
        matcher = CompiledMatcher(selectors, {0x10: 0, 0x20: 1})
        assert matcher.match(0b11) == 0

    def test_priority_order(self):
        selectors = [
            GroupSelector(7, (frozenset({0x10}),)),
            GroupSelector(8, (frozenset({0x10}),)),
        ]
        matcher = CompiledMatcher(selectors, {0x10: 0})
        assert matcher.match(0b1) == 7

    def test_disjunction(self):
        selectors = [GroupSelector(0, (frozenset({0x10}), frozenset({0x20})))]
        matcher = CompiledMatcher(selectors, {0x10: 0, 0x20: 1})
        assert matcher.match(0b01) == 0
        assert matcher.match(0b10) == 0
        assert matcher.match(0b00) is None

    def test_unplanned_site_rejected(self):
        selectors = [GroupSelector(0, (frozenset({0x99}),))]
        with pytest.raises(SelectorMatchError):
            CompiledMatcher(selectors, {0x10: 0})

    def test_never_match(self):
        assert NeverMatch().match(0xFFFF) is None


class TestEndToEndIdentification:
    def test_selectors_identify_groups_at_runtime(self, demo):
        """Synthesised selectors + instrumented machine identify allocations."""
        from repro.allocators import AddressSpace, SizeClassAllocator
        from repro.machine import GroupStateVector, Machine
        from repro.rewriting import BoltRewriter

        program = demo.program
        chain_a = (demo.main_a.addr, demo.a_malloc.addr)
        chain_b = (demo.main_b.addr, demo.b_malloc.addr)
        chain_c = (demo.main_c.addr, demo.c_malloc.addr)
        table = ContextTable()
        ca, cb, cc = (table.intern(c) for c in (chain_a, chain_b, chain_c))
        groups = [Group(0, frozenset({ca, cb}), 10.0, 100)]
        result = synthesise_selectors(groups, table, {ca: 0, cb: 0, cc: None})

        rewriter = BoltRewriter(program)
        plan = rewriter.instrument(monitored_sites(result.selectors))
        sv = GroupStateVector()
        matcher = CompiledMatcher(list(result.selectors), plan.bit_for_site)
        machine = Machine(
            program,
            SizeClassAllocator(AddressSpace(0)),
            instrumentation=plan.bit_for_site,
            state_vector=sv,
        )

        observed = {}
        for label, path in (("a", (demo.main_a, demo.a_malloc)),
                            ("b", (demo.main_b, demo.b_malloc)),
                            ("c", (demo.main_c, demo.c_malloc))):
            with machine.call(path[0]):
                with machine.call(path[1]):
                    observed[label] = matcher.match(sv.value)
        assert observed["a"] == 0
        assert observed["b"] == 0
        assert observed["c"] is None
