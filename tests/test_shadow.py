"""Unit tests for shadow-stack context formation (paper §4.1 rules)."""

from repro.machine import ProgramBuilder
from repro.profiling import ContextTable, reduce_frames, reduced_context, shadow_frames


def build_wrapper_program():
    """main -> helper -> wrapped (main binary) -> libc malloc, plus a
    library callback path and recursion."""
    b = ProgramBuilder("shadow-test")
    b.function("malloc", in_main_binary=False)
    b.function("libhelper", in_main_binary=False, traceable=False)
    sites = {
        "main_helper": b.call_site("main", "helper"),
        "helper_wrapped": b.call_site("helper", "wrapped"),
        "wrapped_malloc": b.call_site("wrapped", "malloc"),
        "main_lib": b.call_site("main", "libhelper"),
        "lib_malloc": b.call_site("libhelper", "malloc"),
        "main_rec": b.call_site("main", "recurse"),
        "rec_rec": b.call_site("recurse", "recurse"),
        "rec_malloc": b.call_site("recurse", "malloc"),
    }
    return b.build(), sites


class TestShadowFrames:
    def test_main_binary_frames_kept(self):
        program, s = build_wrapper_program()
        stack = [s["main_helper"], s["helper_wrapped"], s["wrapped_malloc"]]
        frames = shadow_frames(program, stack)
        assert frames == [
            ("helper", s["main_helper"].addr),
            ("wrapped", s["helper_wrapped"].addr),
            ("malloc", s["wrapped_malloc"].addr),
        ]

    def test_untraceable_library_frame_dropped(self):
        program, s = build_wrapper_program()
        stack = [s["main_lib"], s["lib_malloc"]]
        frames = shadow_frames(program, stack)
        names = [name for name, _ in frames]
        assert "libhelper" not in names
        assert "malloc" in names

    def test_library_call_site_traced_to_main_origin(self):
        program, s = build_wrapper_program()
        stack = [s["main_lib"], s["lib_malloc"]]
        frames = shadow_frames(program, stack)
        # malloc was called from library code; its recorded site is the
        # nearest main-executable call site (main -> libhelper).
        assert frames[-1] == ("malloc", s["main_lib"].addr)

    def test_malloc_frame_included_because_traceable(self):
        program, s = build_wrapper_program()
        stack = [s["main_helper"], s["helper_wrapped"], s["wrapped_malloc"]]
        assert shadow_frames(program, stack)[-1][0] == "malloc"

    def test_empty_stack(self):
        program, _ = build_wrapper_program()
        assert shadow_frames(program, []) == []


class TestReduceFrames:
    def test_no_recursion_unchanged(self):
        frames = [("a", 1), ("b", 2), ("c", 3)]
        assert reduce_frames(frames) == frames

    def test_recursion_keeps_most_recent(self):
        frames = [("a", 1), ("r", 2), ("r", 3), ("r", 3), ("r", 3)]
        assert reduce_frames(frames) == [("a", 1), ("r", 2), ("r", 3)]

    def test_interleaved_recursion(self):
        frames = [("a", 1), ("b", 2), ("a", 1), ("b", 2)]
        assert reduce_frames(frames) == [("a", 1), ("b", 2)]

    def test_same_function_different_sites_kept(self):
        frames = [("f", 1), ("f", 2)]
        assert reduce_frames(frames) == frames


class TestReducedContext:
    def test_recursive_stack_collapses(self):
        program, s = build_wrapper_program()
        deep = [s["main_rec"]] + [s["rec_rec"]] * 7 + [s["rec_malloc"]]
        shallow = [s["main_rec"], s["rec_rec"], s["rec_malloc"]]
        assert reduced_context(program, deep) == reduced_context(program, shallow)

    def test_distinct_paths_distinct_contexts(self):
        program, s = build_wrapper_program()
        c1 = reduced_context(program, [s["main_helper"], s["helper_wrapped"], s["wrapped_malloc"]])
        c2 = reduced_context(program, [s["main_lib"], s["lib_malloc"]])
        assert c1 != c2


class TestContextTable:
    def test_intern_is_idempotent(self):
        table = ContextTable()
        cid = table.intern((1, 2, 3))
        assert table.intern((1, 2, 3)) == cid
        assert table.chain(cid) == (1, 2, 3)

    def test_ids_are_dense(self):
        table = ContextTable()
        assert table.intern((1,)) == 0
        assert table.intern((2,)) == 1
        assert len(table) == 2

    def test_lookup_missing(self):
        assert ContextTable().lookup((9,)) is None

    def test_describe(self):
        program, s = build_wrapper_program()
        table = ContextTable()
        cid = table.intern((s["main_helper"].addr,))
        assert "main->helper" in table.describe(cid, program)
        empty = table.intern(())
        assert table.describe(empty, program) == "<empty>"
