"""Unit tests for the cache/TLB simulator and the cost model."""

import pytest

from repro.cache import (
    CacheConfigError,
    CacheHierarchy,
    CostModel,
    HierarchyConfig,
    SetAssociativeCache,
    TLB,
)
from repro.machine.machine import MachineMetrics


class TestSetAssociativeCache:
    def test_first_access_misses_second_hits(self):
        cache = SetAssociativeCache(1024, 2, 64)
        assert not cache.access_line(5)
        assert cache.access_line(5)

    def test_geometry(self):
        cache = SetAssociativeCache(32 * 1024, 8, 64)
        assert cache.num_sets == 64

    def test_invalid_geometry_rejected(self):
        with pytest.raises(CacheConfigError):
            SetAssociativeCache(1000, 3, 64)
        with pytest.raises(CacheConfigError):
            SetAssociativeCache(1024, 2, 60)

    def test_lru_eviction_order(self):
        # Direct-map-free: 1 set, 2 ways.
        cache = SetAssociativeCache(128, 2, 64)
        assert cache.num_sets == 1
        cache.access_line(1)
        cache.access_line(2)
        cache.access_line(1)  # refresh 1 -> LRU is 2
        cache.access_line(3)  # evicts 2
        assert cache.contains_line(1)
        assert not cache.contains_line(2)
        assert cache.contains_line(3)

    def test_capacity_thrashing(self):
        cache = SetAssociativeCache(128, 2, 64)  # 2 lines total
        for line in range(3):
            cache.access_line(line)
        # Cyclic access over 3 lines with LRU: everything misses.
        for _ in range(9):
            for line in range(3):
                assert not cache.access_line(line)

    def test_sets_isolate_addresses(self):
        cache = SetAssociativeCache(256, 1, 64)  # 4 sets, direct mapped
        cache.access_line(0)
        cache.access_line(1)  # different set; no eviction
        assert cache.contains_line(0)
        cache.access_line(4)  # same set as 0
        assert not cache.contains_line(0)

    def test_non_power_of_two_sets(self):
        # 3 sets: the L3's 11-way geometry relies on the modulo path.
        cache = SetAssociativeCache(3 * 2 * 64, 2, 64)
        assert cache.num_sets == 3
        cache.access_line(3)
        assert cache.access_line(3)

    def test_non_power_of_two_set_mapping(self):
        # Lines a multiple of num_sets apart share a set; others do not.
        cache = SetAssociativeCache(3 * 1 * 64, 1, 64)  # 3 sets, direct mapped
        cache.access_line(0)
        cache.access_line(1)  # set 1: line 0 survives
        assert cache.contains_line(0)
        cache.access_line(3)  # 3 % 3 == 0: same set as line 0, evicts it
        assert not cache.contains_line(0)
        assert cache.contains_line(1)
        assert cache.contains_line(3)

    def test_non_power_of_two_lru_eviction(self):
        # LRU order must hold within a modulo-indexed set too.
        cache = SetAssociativeCache(3 * 2 * 64, 2, 64)  # 3 sets, 2 ways
        cache.access_line(0)
        cache.access_line(3)
        cache.access_line(0)  # refresh 0 -> LRU is 3
        cache.access_line(6)  # same set (all = 0 mod 3); evicts 3
        assert cache.contains_line(0)
        assert not cache.contains_line(3)
        assert cache.contains_line(6)

    def test_flush_preserves_counters(self):
        cache = SetAssociativeCache(1024, 2, 64)
        cache.access_line(1)
        cache.access_line(1)
        cache.access_line(2)
        cache.flush()
        assert not cache.contains_line(1)
        assert not cache.contains_line(2)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        # Post-flush the cache is cold: the re-access is a fresh miss and
        # keeps accumulating into the same counters.
        assert not cache.access_line(1)
        assert cache.stats.accesses == 4
        assert cache.stats.misses == 3

    def test_miss_rate(self):
        cache = SetAssociativeCache(1024, 2, 64)
        cache.access_line(1)
        cache.access_line(1)
        assert cache.stats.miss_rate == 0.5


class TestTLB:
    def test_hit_after_translate(self):
        tlb = TLB(entries=4)
        assert not tlb.access_page(1)
        assert tlb.access_page(1)

    def test_lru_capacity(self):
        tlb = TLB(entries=2)
        tlb.access_page(1)
        tlb.access_page(2)
        tlb.access_page(1)
        tlb.access_page(3)  # evicts 2
        assert tlb.access_page(1)
        assert not tlb.access_page(2)

    def test_page_of(self):
        tlb = TLB(page_size=4096)
        assert tlb.page_of(4095) == 0
        assert tlb.page_of(4096) == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TLB(entries=0)
        with pytest.raises(ValueError):
            TLB(page_size=1000)


class TestCacheHierarchy:
    def test_xeon_geometry(self):
        hierarchy = CacheHierarchy(HierarchyConfig.xeon_w2195())
        assert hierarchy.l1.size == 32 * 1024
        assert hierarchy.l2.size == 1024 * 1024
        assert hierarchy.l3.size == 25344 * 1024
        assert hierarchy.l3.assoc == 11

    def test_miss_fills_all_levels(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0x1000, 8)
        snap = hierarchy.snapshot()
        assert snap.l1_misses == 1
        assert snap.l2_misses == 1
        assert snap.l3_misses == 1

    def test_l1_hit_leaves_l2_untouched(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0x1000, 8)
        hierarchy.access(0x1000, 8)
        snap = hierarchy.snapshot()
        assert snap.accesses == 2
        assert snap.l2_misses == 1

    def test_straddling_access_touches_two_lines(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(60, 8)  # crosses the line boundary at 64
        assert hierarchy.snapshot().l1_misses == 2

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = CacheHierarchy()
        # Touch enough distinct lines to overflow L1 but not L2, then
        # re-touch the first line: L1 misses, L2 hits.
        lines = (64 * 1024) // 64  # 64 KiB worth of lines (2x L1)
        for i in range(lines):
            hierarchy.access(i * 64, 8)
        before = hierarchy.snapshot()
        hierarchy.access(0, 8)
        after = hierarchy.snapshot()
        assert after.l1_misses == before.l1_misses + 1
        assert after.l2_misses == before.l2_misses

    def test_tlb_counts_pages(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0, 8)
        hierarchy.access(4096, 8)
        assert hierarchy.snapshot().tlb_misses == 2

    def test_miss_reduction_orientation(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0, 8)
        base = hierarchy.snapshot()
        better = type(base)(
            accesses=base.accesses,
            l1_misses=0,
            l2_misses=0,
            l3_misses=0,
            tlb_misses=0,
        )
        assert base.l1_miss_reduction(better) == 1.0


class TestCostModel:
    def test_cycles_additive(self):
        model = CostModel()
        metrics = MachineMetrics(loads=10, stores=0, compute_cycles=100.0)
        from repro.cache.hierarchy import HierarchyStats

        stats = HierarchyStats(accesses=10, l1_misses=2, l2_misses=1, l3_misses=0, tlb_misses=1)
        expected = (
            100.0
            + 10 * model.l1_hit
            + 2 * (model.l2_hit - model.l1_hit)
            + 1 * (model.l3_hit - model.l2_hit)
            + 1 * model.tlb_walk
        )
        assert model.cycles(metrics, stats) == pytest.approx(expected)

    def test_alloc_costs_charged(self):
        model = CostModel()
        from repro.cache.hierarchy import HierarchyStats

        metrics = MachineMetrics(allocs=3, frees=2)
        stats = HierarchyStats(accesses=0, l1_misses=0, l2_misses=0, l3_misses=0, tlb_misses=0)
        assert model.cycles(metrics, stats) == pytest.approx(
            3 * model.malloc_op + 2 * model.free_op
        )

    def test_speedup_orientation(self):
        assert CostModel.speedup(120.0, 100.0) == pytest.approx(0.2)
        assert CostModel.speedup(100.0, 125.0) == pytest.approx(-0.2)

    def test_speedup_degenerate(self):
        assert CostModel.speedup(100.0, 0.0) == 0.0
