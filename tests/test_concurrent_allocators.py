"""Tests for the concurrent allocator families and the chunk-type bug sweep.

Covers the coalescing free-list allocator (first-fit/best-fit, boundary
coalescing, in-place realloc), the per-thread arena allocator (mailbox
deferred frees, cross-thread accounting, thread routing via the mix
scheduler), the false-sharing tracker, the new sanitizer validators, and
the three regression fixes that rode along: sharded spare chunk-type
rebuild, in-place realloc stats inflation, and single-application of the
shard class in ``free``/``give_back``.
"""

from __future__ import annotations

import random
from types import SimpleNamespace

import pytest

from repro.allocators import (
    ALLOCATOR_FAMILIES,
    AddressSpace,
    AllocationError,
    ArenaAllocator,
    FreeListAllocator,
    GroupAllocator,
    ShardedGroupAllocator,
    SizeClassAllocator,
    make_family_allocator,
)
from repro.allocators.group import _Chunk
from repro.allocators.sharded import _ShardedChunk, _shard_class
from repro.cache.sharing import FalseSharingTracker
from repro.harness.prepare import get_or_record_trace
from repro.harness.runner import measure_family
from repro.machine import GroupStateVector
from repro.sanitize import (
    FAMILIES as SANITIZE_FAMILIES,
    FuzzConfig,
    default_scenarios,
    run_fuzz,
    run_ops,
    validate_allocator,
)
from repro.workloads.base import get_workload

SCENARIO = "scn-3"
MIX = "mix-5x3-rr"
NEW_FAMILIES = ("freelist-ff", "freelist-bf", "arena")


def _rules(findings):
    return {finding.rule for finding in findings}


# ---------------------------------------------------------------------------
# Free-list allocator
# ---------------------------------------------------------------------------


class TestFreeList:
    def make(self, **kwargs):
        return FreeListAllocator(AddressSpace(0), **kwargs)

    def test_rejects_unknown_policy(self):
        with pytest.raises(AllocationError, match="policy"):
            self.make(policy="worst-fit")

    def test_first_fit_reuses_lowest_hole(self):
        allocator = self.make()
        a = allocator.malloc(64)
        b = allocator.malloc(64)
        allocator.malloc(64)  # plug: keeps the b-hole from coalescing away
        allocator.free(a)
        allocator.free(b)
        # a+b coalesce into one leading 128-byte hole; first-fit carves its
        # low end for any request that fits.
        assert allocator.malloc(32) == a

    def test_best_fit_prefers_tightest_hole(self):
        allocator = self.make(policy="best-fit")
        a = allocator.malloc(256)
        p1 = allocator.malloc(16)  # pin
        b = allocator.malloc(64)
        allocator.malloc(16)  # pin
        allocator.free(a)
        allocator.free(b)
        assert p1  # two disjoint holes: 256 at a, 64 at b
        # A 48-byte request fits both; best-fit picks the 64-byte hole.
        assert allocator.malloc(48) == b
        # First-fit would have taken the lower-addressed 256-byte hole.
        ff = self.make()
        a2 = ff.malloc(256)
        ff.malloc(16)
        b2 = ff.malloc(64)
        ff.malloc(16)
        ff.free(a2)
        ff.free(b2)
        assert ff.malloc(48) == a2

    def test_boundary_coalescing_merges_neighbours(self):
        allocator = self.make()
        addrs = [allocator.malloc(64) for _ in range(3)]
        allocator.malloc(64)  # plug against the pool's trailing free range
        before = len(allocator._starts)
        allocator.free(addrs[0])
        allocator.free(addrs[2])
        assert len(allocator._starts) == before + 2
        allocator.free(addrs[1])  # bridges both neighbours
        assert len(allocator._starts) == before + 1
        assert allocator.coalesced_frees >= 1

    def test_alignment_carving_keeps_lead_free(self):
        allocator = self.make()
        allocator.malloc(8)  # offset the cursor off any large alignment
        addr = allocator.malloc(64, alignment=256)
        assert addr % 256 == 0
        assert validate_allocator(allocator) == []

    def test_oversized_request_gets_dedicated_pool(self):
        allocator = self.make(pool_size=1 << 12)
        addr = allocator.malloc(1 << 16)
        assert allocator.size_of(addr) == 1 << 16
        assert len(allocator._pools) >= 1
        assert validate_allocator(allocator) == []

    def test_size_of_reports_requested_size(self):
        allocator = self.make()
        addr = allocator.malloc(33)
        assert allocator.size_of(addr) == 33
        assert allocator.free(addr) == 33

    def test_free_unknown_address_raises(self):
        allocator = self.make()
        with pytest.raises(AllocationError, match="unknown"):
            allocator.free(0xDEAD)

    def test_realloc_shrink_in_place_releases_tail(self):
        allocator = self.make()
        addr = allocator.malloc(128)
        plug = allocator.malloc(16)
        assert allocator.realloc(addr, 40) == addr
        assert allocator.size_of(addr) == 40
        assert allocator.inplace_reallocs == 1
        # The released tail is immediately reusable free space.
        tail = allocator.malloc(64)
        assert addr < tail < plug
        assert validate_allocator(allocator) == []

    def test_realloc_grows_into_adjacent_hole(self):
        allocator = self.make()
        addr = allocator.malloc(64)
        neighbour = allocator.malloc(64)
        allocator.malloc(16)  # plug
        allocator.free(neighbour)
        assert allocator.realloc(addr, 96) == addr
        assert allocator.inplace_reallocs == 1
        assert allocator.moved_reallocs == 0

    def test_realloc_moves_as_last_resort(self):
        allocator = self.make()
        addr = allocator.malloc(64)
        allocator.malloc(64)  # occupied neighbour: no in-place growth
        moved = allocator.realloc(addr, 256)
        assert moved != addr
        assert allocator.moved_reallocs == 1
        assert allocator.size_of(moved) == 256
        with pytest.raises(AllocationError):
            allocator.size_of(addr)

    @pytest.mark.parametrize("policy", ["first-fit", "best-fit"])
    def test_churn_stays_consistent(self, policy):
        rng = random.Random(f"freelist-churn:{policy}")
        allocator = self.make(policy=policy, pool_size=1 << 16)
        live = {}
        for _ in range(2000):
            if live and rng.random() < 0.45:
                addr = rng.choice(sorted(live))
                assert allocator.free(addr) == live.pop(addr)
            else:
                size = rng.randrange(1, 512)
                addr = allocator.malloc(size)
                live[addr] = size
        assert validate_allocator(allocator) == []
        assert allocator.stats.live_blocks == len(live)
        assert allocator.stats.live_bytes == sum(live.values())
        assert allocator.coalesced_frees > 0


# ---------------------------------------------------------------------------
# Arena allocator
# ---------------------------------------------------------------------------


class TestArena:
    def make(self, **kwargs):
        kwargs.setdefault("arenas", 2)
        return ArenaAllocator(AddressSpace(0), **kwargs)

    def test_threads_map_to_arenas_by_modulo(self):
        allocator = self.make(arenas=2)
        allocator.set_thread(5)
        assert allocator.current_arena == 1
        allocator.set_thread(4)
        assert allocator.current_arena == 0

    def test_same_thread_free_is_immediate(self):
        allocator = self.make()
        addr = allocator.malloc(64)
        allocator.free(addr)
        assert allocator.cross_thread_frees == 0
        assert sum(len(m) for m in allocator._mailboxes) == 0
        assert allocator.malloc(64) == addr

    def test_cross_thread_free_parks_in_mailbox(self):
        allocator = self.make()
        addr = allocator.malloc(64)
        allocator.set_thread(1)
        size = allocator.free(addr)
        assert size == 64
        assert allocator.cross_thread_frees == 1
        # Logically dead at once...
        assert allocator.stats.live_blocks == 0
        with pytest.raises(AllocationError):
            allocator.size_of(addr)
        # ...but physically parked until the owner allocates again.
        assert addr in allocator._mailboxes[0]
        assert validate_allocator(allocator) == []
        allocator.set_thread(0)
        reused = allocator.malloc(64)
        assert reused == addr
        assert allocator.mailbox_flushes == 1
        assert sum(len(m) for m in allocator._mailboxes) == 0

    def test_cross_thread_realloc_moves_to_current_arena(self):
        allocator = self.make()
        addr = allocator.malloc(64)
        allocator.set_thread(1)
        moved = allocator.realloc(addr, 128)
        assert moved != addr
        assert allocator._owner[moved] == 1
        assert allocator.cross_thread_frees == 1
        assert allocator.size_of(moved) == 128
        assert validate_allocator(allocator) == []

    def test_same_thread_realloc_stays_in_arena(self):
        allocator = self.make()
        addr = allocator.malloc(64)
        assert allocator.realloc(addr, 32) == addr
        assert allocator.stats.total_allocs == 1
        assert allocator.stats.total_frees == 0
        assert allocator.stats.live_bytes == 32

    def test_arenas_never_share_pools(self):
        allocator = self.make(arenas=2)
        a0 = allocator.malloc(64)
        allocator.set_thread(1)
        a1 = allocator.malloc(64)
        pools0 = {base for base, _ in allocator._arenas[0]._pools}
        pools1 = {base for base, _ in allocator._arenas[1]._pools}
        assert a0 != a1
        assert not pools0 & pools1

    def test_interleaved_churn_stays_consistent(self):
        rng = random.Random("arena-churn")
        allocator = self.make(arenas=3)
        live = {}
        for _ in range(3000):
            allocator.set_thread(rng.randrange(3))
            if live and rng.random() < 0.45:
                addr = rng.choice(sorted(live))
                assert allocator.free(addr) == live.pop(addr)
            else:
                size = rng.randrange(1, 256)
                addr = allocator.malloc(size)
                live[addr] = size
        assert validate_allocator(allocator) == []
        assert allocator.cross_thread_frees > 0
        assert allocator.stats.live_blocks == len(live)
        assert allocator.stats.live_bytes == sum(live.values())

    def test_registry_builds_every_family(self):
        for family in ALLOCATOR_FAMILIES:
            allocator = make_family_allocator(family, AddressSpace(0))
            addr = allocator.malloc(48)
            assert allocator.size_of(addr) == 48
        with pytest.raises(AllocationError, match="unknown allocator family"):
            make_family_allocator("tcmalloc", AddressSpace(0))


# ---------------------------------------------------------------------------
# False-sharing tracker
# ---------------------------------------------------------------------------


def _machine(thread):
    return SimpleNamespace(thread_id=thread)


def _obj(addr, size):
    return SimpleNamespace(addr=addr, size=size)


class TestFalseSharingTracker:
    def test_single_thread_stays_at_zero(self):
        tracker = FalseSharingTracker()
        for index in range(8):
            tracker.on_alloc(_machine(0), _obj(index * 64, 64))
        assert tracker.as_counters()["false_sharing_lines"] == 0
        assert tracker.as_counters()["threads_seen"] == 1

    def test_co_tenanted_line_counts_once(self):
        tracker = FalseSharingTracker()
        tracker.on_alloc(_machine(0), _obj(0, 32))
        tracker.on_alloc(_machine(1), _obj(32, 32))  # other half of line 0
        tracker.on_alloc(_machine(2), _obj(16, 8))  # third tenant, same line
        assert tracker.false_sharing_lines == 1

    def test_full_reuse_by_other_thread_is_not_false_sharing(self):
        tracker = FalseSharingTracker()
        obj = _obj(0, 64)
        tracker.on_alloc(_machine(0), obj)
        tracker.on_free(_machine(0), obj)
        tracker.on_alloc(_machine(1), _obj(0, 64))
        assert tracker.false_sharing_lines == 0

    def test_cross_thread_access_detected(self):
        tracker = FalseSharingTracker()
        obj = _obj(0, 64)
        tracker.on_alloc(_machine(0), obj)
        tracker.on_access(_machine(0), obj, 0, 8, False)
        tracker.on_access(_machine(1), obj, 8, 8, True)
        tracker.on_access(_machine(0), obj, 16, 8, False)
        counters = tracker.as_counters()
        assert counters["shared_lines"] == 1
        assert counters["cross_thread_accesses"] == 2

    def test_realloc_transfers_tenancy(self):
        tracker = FalseSharingTracker()
        tracker.on_alloc(_machine(0), _obj(0, 64))
        tracker.on_realloc(_machine(1), _obj(128, 64), 0, 64)
        # Old line fully released, new line owned by thread 1: no sharing.
        assert tracker.false_sharing_lines == 0
        tracker.on_alloc(_machine(0), _obj(160, 8))
        assert tracker.false_sharing_lines == 1

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            FalseSharingTracker(line_size=96)


# ---------------------------------------------------------------------------
# Sanitizer validators for the new families
# ---------------------------------------------------------------------------


class TestSanitizerNewFamilies:
    def test_freelist_uncoalesced_detected(self):
        allocator = FreeListAllocator(AddressSpace(0))
        addr = allocator.malloc(64)
        base = addr + 64
        # Plant two touching-but-unmerged free ranges inside the pool.
        allocator._starts[:0] = [base, base + 32]
        allocator._ends[:0] = [base + 32, base + 64]
        assert "freelist.uncoalesced" in _rules(validate_allocator(allocator))

    def test_freelist_live_free_overlap_detected(self):
        allocator = FreeListAllocator(AddressSpace(0))
        addr = allocator.malloc(64)
        allocator._insert_range(addr + 8, addr + 24)
        assert "freelist.live-free-overlap" in _rules(validate_allocator(allocator))

    def test_freelist_out_of_pool_range_detected(self):
        allocator = FreeListAllocator(AddressSpace(0))
        allocator.malloc(64)
        allocator._insert_range(0x10, 0x20)
        assert "freelist.range-bounds" in _rules(validate_allocator(allocator))

    def test_freelist_stats_drift_detected(self):
        allocator = FreeListAllocator(AddressSpace(0))
        allocator.malloc(64)
        allocator.stats.live_bytes += 8
        assert "freelist.stats-live-bytes" in _rules(validate_allocator(allocator))

    def test_arena_mailbox_owner_conflict_detected(self):
        allocator = ArenaAllocator(AddressSpace(0), arenas=2)
        addr = allocator.malloc(64)
        allocator._mailboxes[0].append(addr)  # parked while still owned
        assert "arena.mailbox-owner" in _rules(validate_allocator(allocator))

    def test_arena_mailbox_duplicate_detected(self):
        allocator = ArenaAllocator(AddressSpace(0), arenas=2)
        addr = allocator.malloc(64)
        allocator.set_thread(1)
        allocator.free(addr)
        allocator._mailboxes[1].append(addr)
        assert "arena.mailbox-duplicate" in _rules(validate_allocator(allocator))

    def test_arena_foreign_owner_detected(self):
        allocator = ArenaAllocator(AddressSpace(0), arenas=2)
        addr = allocator.malloc(64)
        allocator._owner[addr] = 1  # lies about the owning arena
        assert "arena.owner-live" in _rules(validate_allocator(allocator))

    def test_arena_recurses_into_sub_arenas(self):
        allocator = ArenaAllocator(AddressSpace(0), arenas=2)
        allocator.malloc(64)
        allocator._arenas[0].stats.live_bytes += 8
        assert "freelist.stats-live-bytes" in _rules(validate_allocator(allocator))


# ---------------------------------------------------------------------------
# Regression: sharded spare chunk-type hazard
# ---------------------------------------------------------------------------


class _AlwaysGroup:
    def match(self, state):
        return 0


def _make_group(cls, **kwargs):
    space = AddressSpace(0)
    return cls(
        space, SizeClassAllocator(space), _AlwaysGroup(), GroupStateVector(), **kwargs
    )


class TestShardedChunkTypeRegression:
    def test_plain_spare_is_rebuilt_as_sharded(self):
        """A wrong-typed spare (the migration hazard) is rebuilt on reuse."""
        allocator = _make_group(ShardedGroupAllocator, chunk_size=1 << 12)
        addr = allocator.malloc(64)
        allocator.free(addr)
        # Simulate a spare produced by a base-class code path: same identity,
        # but the plain chunk type that cannot recycle.
        chunk = allocator._current.pop(0)
        plain = _Chunk(chunk.base, chunk.size, chunk.group)
        allocator._chunks[plain.base] = plain
        allocator._spares.append(plain)
        reused = allocator.malloc(48)
        chunk = allocator._chunk_of(reused)
        assert isinstance(chunk, _ShardedChunk)
        assert allocator._chunks[chunk.base] is chunk
        # The rebuilt chunk recycles: the defining sharded behaviour.
        allocator.free(reused)
        assert allocator.malloc(48) == reused
        assert validate_allocator(allocator) == []

    def test_serve_style_migration_keeps_chunks_sharded(self):
        """migrate_groups over the sharded allocator carves sharded chunks."""

        class _Groups:
            group = 0

            def match(self, state):
                return self.group

        space = AddressSpace(0)
        matcher = _Groups()
        allocator = ShardedGroupAllocator(
            space, SizeClassAllocator(space), matcher, GroupStateVector(),
            chunk_size=1 << 12, max_spare_chunks=4,
        )
        addrs = []
        for index in range(24):
            matcher.group = index % 2
            addrs.append(allocator.malloc(96))
        # Serve-style re-optimisation: fuse group 1 into group 0.
        report = allocator.migrate_groups({1: 0, 0: None}.get)
        assert report.moved_regions == 12
        assert all(isinstance(c, _ShardedChunk) for c in allocator._chunks.values())
        assert all(isinstance(c, _ShardedChunk) for c in allocator._spares)
        # Post-migration traffic reuses the retired spares and still recycles.
        matcher.group = 1
        fresh = allocator.malloc(96)
        allocator.free(fresh)
        assert allocator.malloc(96) == fresh
        assert validate_allocator(allocator) == []

    def test_base_allocator_rebuilds_sharded_spare(self):
        """The hazard is symmetric: a sharded spare under a plain allocator."""
        allocator = _make_group(GroupAllocator, chunk_size=1 << 12)
        addr = allocator.malloc(64)
        allocator.free(addr)
        chunk = allocator._current.pop(0)
        sharded = _ShardedChunk(chunk.base, chunk.size, chunk.group)
        allocator._chunks[sharded.base] = sharded
        allocator._spares.append(sharded)
        reused = allocator.malloc(48)
        assert type(allocator._chunk_of(reused)) is _Chunk
        assert validate_allocator(allocator) == []


# ---------------------------------------------------------------------------
# Regression: in-place realloc stats inflation
# ---------------------------------------------------------------------------


class TestReallocStats:
    def test_size_class_in_place_realloc_does_not_inflate_churn(self):
        allocator = SizeClassAllocator(AddressSpace(0))
        addr = allocator.malloc(100)
        assert allocator.realloc(addr, 104) == addr  # same 112-byte class
        assert allocator.stats.total_allocs == 1
        assert allocator.stats.total_frees == 0
        assert allocator.stats.live_bytes == 104
        assert allocator.stats.live_blocks == 1

    def test_size_class_peak_follows_in_place_growth(self):
        allocator = SizeClassAllocator(AddressSpace(0))
        addr = allocator.malloc(97)
        allocator.realloc(addr, 112)
        assert allocator.stats.peak_live_bytes == 112

    def test_group_shrink_in_place_does_not_inflate_churn(self):
        allocator = _make_group(ShardedGroupAllocator)
        addr = allocator.malloc(200)
        assert allocator.realloc(addr, 150) == addr
        assert allocator.stats.total_allocs == 1
        assert allocator.stats.total_frees == 0
        assert allocator.stats.live_bytes == 150
        assert allocator.grouped_live_bytes == 150

    def test_freelist_in_place_realloc_does_not_inflate_churn(self):
        allocator = FreeListAllocator(AddressSpace(0))
        addr = allocator.malloc(128)
        assert allocator.realloc(addr, 64) == addr
        assert allocator.stats.total_allocs == 1
        assert allocator.stats.total_frees == 0
        assert allocator.stats.live_bytes == 64

    def test_shadow_oracle_agrees_after_in_place_realloc(self):
        """The differential oracle pins the fixed accounting semantics."""
        ops = [("malloc", 100, 0), ("realloc", 0, 104), ("free", 0)]
        for family in ("size-class", "sharded", "freelist-ff", "arena"):
            config = FuzzConfig(family=family, seed=0, ops=0, check_interval=1)
            assert run_ops(ops, config) == [], family


# ---------------------------------------------------------------------------
# Regression: shard class applied exactly once
# ---------------------------------------------------------------------------


class TestShardClassSingleApply:
    def test_recycle_across_the_rounding_boundary(self):
        """free(33) must land in shard 48, recyclable by a 48-byte request."""
        allocator = _make_group(ShardedGroupAllocator)
        addr = allocator.malloc(33)
        allocator.free(addr)
        assert allocator.malloc(48) == addr

    def test_shard_keys_are_fixed_points(self):
        allocator = _make_group(ShardedGroupAllocator)
        rng = random.Random("shard-keys")
        live = []
        for _ in range(400):
            if live and rng.random() < 0.5:
                allocator.free(live.pop(rng.randrange(len(live))))
            else:
                live.append(allocator.malloc(rng.randrange(1, 200)))
        for chunk in allocator._chunks.values():
            for shard in chunk.shards:
                assert shard == _shard_class(shard)
        assert validate_allocator(allocator) == []

    def test_sanitizer_flags_requested_size_as_shard_key(self):
        allocator = _make_group(ShardedGroupAllocator)
        addr = allocator.malloc(33)
        allocator.free(addr)
        chunk = allocator._chunk_of(addr)
        # Re-file the freed region under its (non-rounded) requested size —
        # the exact corruption the old double-apply bug produced.
        chunk.shards.pop(_shard_class(33))
        chunk.shards[33] = [addr]
        assert "sharded.shard-key" in _rules(validate_allocator(allocator))


# ---------------------------------------------------------------------------
# Fuzz matrix coverage
# ---------------------------------------------------------------------------


class TestFuzzMatrixFamilies:
    def test_sanitize_families_include_new_allocators(self):
        for family in NEW_FAMILIES:
            assert family in SANITIZE_FAMILIES

    def test_matrix_has_coalescing_stress_scenarios(self):
        scenarios = default_scenarios(seed=0, ops=100)
        for family in NEW_FAMILIES:
            stressed = [
                s for s in scenarios if s.family == family and s.pool_size == 1 << 16
            ]
            assert stressed, family

    @pytest.mark.parametrize("family", NEW_FAMILIES)
    def test_short_differential_fuzz_is_clean(self, family):
        report = run_fuzz(FuzzConfig(family=family, seed=7, ops=2500))
        assert report.ok, report.findings

    def test_scenario_bridge_covers_new_families(self):
        from repro.scenario import scenario_fuzz_entries

        entries = scenario_fuzz_entries(seed=1, count=len(SANITIZE_FAMILIES), ops=50)
        covered = {config.family for config, _ in entries}
        assert set(NEW_FAMILIES) <= covered


# ---------------------------------------------------------------------------
# Thread-interleaved measurement: determinism and engine parity
# ---------------------------------------------------------------------------


def _measurement_fields(m):
    return (
        m.workload, m.config, m.scale, m.seed,
        m.cycles, m.cache, m.accesses, m.allocs, m.frees,
        m.peak_live_bytes,
    )


@pytest.fixture(scope="module")
def traced():
    """(workload, trace) for the generated scenario and the 3-tenant mix."""
    out = {}
    for name in (SCENARIO, MIX):
        workload = get_workload(name)
        out[name] = (workload, get_or_record_trace(name, workload=workload))
    return out


class TestFamilyMeasurement:
    @pytest.mark.parametrize("name", [SCENARIO, MIX])
    @pytest.mark.parametrize("family", NEW_FAMILIES)
    def test_direct_measurement_is_deterministic(self, name, family):
        workload = get_workload(name)
        first = measure_family(workload, family, scale="test", seed=1)
        second = measure_family(workload, family, scale="test", seed=1)
        assert _measurement_fields(first) == _measurement_fields(second)

    @pytest.mark.parametrize("name", [SCENARIO, MIX])
    @pytest.mark.parametrize("family", NEW_FAMILIES)
    def test_event_columnar_parity(self, traced, name, family):
        workload, trace = traced[name]
        kwargs = dict(scale="test", seed=1, trace=trace)
        event = measure_family(workload, family, engine="event", **kwargs)
        columnar = measure_family(workload, family, engine="columnar", **kwargs)
        assert _measurement_fields(event) == _measurement_fields(columnar)

    def test_mix_interleave_reaches_thread_aware_allocator(self):
        """Tenants become threads: the arena sees every simulated thread."""
        from repro.obs import metrics as obs_metrics

        workload = get_workload(MIX)
        with obs_metrics.collecting() as registry:
            measure_family(workload, "arena", scale="test", seed=1)
        snapshot = registry.snapshot()
        seen = {
            str(key): value
            for key, value in snapshot.counters.items()
            if "threads_seen" in str(key)
        }
        assert seen and all(value == 3 for value in seen.values())

    def test_arena_eliminates_false_sharing_on_the_mix(self):
        """The headline contrast: shared heap manufactures false sharing,
        per-thread arenas drive it to zero on the same interleave."""
        from repro.obs import metrics as obs_metrics

        workload = get_workload(MIX)

        def sharing_lines(family):
            with obs_metrics.collecting() as registry:
                measure_family(workload, family, scale="test", seed=1)
            for key, value in registry.snapshot().counters.items():
                if "false_sharing_lines" in str(key):
                    return value
            return None

        assert sharing_lines("baseline") > 0
        assert sharing_lines("arena") == 0

    def test_evaluate_serial_matches_jobs_with_families(self, tmp_path):
        from repro.core.artifact_cache import ArtifactCache
        from repro.harness.reproduce import evaluate_all

        cache = ArtifactCache(tmp_path / "cache")
        kwargs = dict(
            trials=1, scale="test", include_random=False,
            cache=cache, engine="columnar", families=("freelist-ff", "arena"),
        )
        serial = evaluate_all([SCENARIO], **kwargs)
        parallel = evaluate_all([SCENARIO], jobs=2, **kwargs)
        assert set(serial[SCENARIO].extra) == {"freelist-ff", "arena"}
        assert set(parallel[SCENARIO].extra) == {"freelist-ff", "arena"}
        for family in ("freelist-ff", "arena"):
            s = serial[SCENARIO].extra[family]
            p = parallel[SCENARIO].extra[family]
            assert (s.cycles, s.l1_misses) == (p.cycles, p.l1_misses), family
            assert serial[SCENARIO].family_speedup(family) == pytest.approx(
                parallel[SCENARIO].family_speedup(family)
            )

    def test_cli_baseline_accepts_allocator_flag(self, capsys):
        from repro.cli import main

        assert main(["baseline", "-b", SCENARIO, "-a", "freelist-bf",
                     "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "freelist-bf" in out
        assert "cycles" in out

    def test_cli_plot_reports_extra_families(self, capsys):
        from repro.cli import main

        assert main(["plot", "--figure", "14", "--benchmarks", SCENARIO,
                     "--trials", "1", "--scale", "test", "--no-cache",
                     "--families", "freelist-ff"]) == 0
        out = capsys.readouterr().out
        assert "Extra allocator families" in out
        assert "freelist-ff" in out

    def test_cli_plot_rejects_unknown_family(self, capsys):
        from repro.cli import main

        assert main(["plot", "--figure", "14", "--benchmarks", SCENARIO,
                     "--trials", "1", "--scale", "test", "--no-cache",
                     "--families", "tcmalloc"]) == 2
        assert "unknown allocator families" in capsys.readouterr().err
