"""Precision tests for paths not pinned down elsewhere."""

import pytest

from repro.analysis import bar_chart
from repro.cache import CacheHierarchy, CostModel
from repro.cache.hierarchy import HierarchyStats
from repro.core import Group, synthesise_selectors
from repro.machine.machine import MachineMetrics
from repro.profiling import ContextTable


class TestIdentificationTieBreak:
    def test_prefers_site_lower_in_the_stack(self):
        """Figure 10's tie rule: equal conflict counts pick the outer site.

        Both member sites discriminate perfectly (count 0), so the choice
        is pure tie-break: the conjunction must use the outermost site.
        """
        table = ContextTable()
        member = table.intern((10, 20))  # outermost 10, innermost 20
        cold = table.intern((30, 40))
        groups = [Group(0, frozenset({member}), 1.0, 10)]
        result = synthesise_selectors(groups, table, {member: 0, cold: None})
        assert result.selectors[0].conjunctions == (frozenset({10}),)

    def test_inner_site_chosen_when_it_discriminates_better(self):
        table = ContextTable()
        member = table.intern((10, 20))
        cold = table.intern((10, 40))  # shares the outer site
        groups = [Group(0, frozenset({member}), 1.0, 10)]
        result = synthesise_selectors(groups, table, {member: 0, cold: None})
        assert result.selectors[0].conjunctions == (frozenset({20}),)


class TestCostModelTerms:
    def _stats(self):
        return HierarchyStats(accesses=0, l1_misses=0, l2_misses=0, l3_misses=0, tlb_misses=0)

    def test_call_cost(self):
        model = CostModel()
        metrics = MachineMetrics(calls=10)
        assert model.cycles(metrics, self._stats()) == pytest.approx(10 * model.call_op)

    def test_toggle_cost(self):
        model = CostModel()
        metrics = MachineMetrics(instrumentation_toggles=100)
        assert model.cycles(metrics, self._stats()) == pytest.approx(
            100 * model.toggle_op
        )


class TestHierarchyPageCrossing:
    def test_access_spanning_pages_counts_both(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(4090, 16)  # crosses the 4096 page boundary
        assert hierarchy.snapshot().tlb_misses == 2

    def test_repeat_translation_hits(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0, 8)
        hierarchy.access(8, 8)
        assert hierarchy.snapshot().tlb_misses == 1


class TestBarChartModes:
    def test_raw_values_mode(self):
        chart = bar_chart({"a": 1500.0}, percent=False)
        assert "+1,500" in chart

    def test_single_negative_value(self):
        chart = bar_chart({"x": -0.5})
        assert "-50.0%" in chart
        assert "#" in chart


class TestMachineMetricsDefaults:
    def test_fresh_metrics_zeroed(self):
        metrics = MachineMetrics()
        assert metrics.accesses == 0
        assert metrics.compute_cycles == 0.0
        assert metrics.instrumentation_toggles == 0
