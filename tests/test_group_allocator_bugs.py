"""Regression tests for the allocator-accounting bugs the sanitizer catches.

Each test class covers one historical bug:

1. ``_Chunk.reset`` forgot to reset ``high_water``, so a reused spare
   carried its previous tenant's bump footprint into fragmentation
   snapshots;
2. a chunk that emptied *while current* was never retired once displaced —
   ``_group_malloc`` replaced ``_current[group]`` without re-checking the
   displaced chunk, orphaning it (never reused, never purged);
3. ``GroupAllocator.realloc``'s shrink path returned early without
   updating ``_region_sizes``/``grouped_live_bytes``, so later frees and
   size queries used the stale larger size.

For each bug the pre-fix behaviour is reconstructed by monkeypatching the
buggy variant back in, and the tests assert both that the fixed code
behaves correctly *and* that the sanitizer's invariant checker or shadow
oracle flags the buggy variant.
"""

import pytest

from repro.allocators import (
    AddressSpace,
    GroupAllocator,
    SizeClassAllocator,
)
from repro.allocators.group import _Chunk
from repro.machine import GroupStateVector
from repro.sanitize import ShadowHeap, validate_allocator

CHUNK = 4096
PAYLOAD = CHUNK - _Chunk.HEADER_SIZE


class _AlwaysGroupZero:
    """Route every small request to group 0."""

    def match(self, state):
        return 0


def make_group_allocator(**kwargs):
    space = AddressSpace(0)
    kwargs.setdefault("chunk_size", CHUNK)
    kwargs.setdefault("slab_size", 4 * CHUNK)
    kwargs.setdefault("max_spare_chunks", 1)
    return GroupAllocator(
        space,
        SizeClassAllocator(space),
        _AlwaysGroupZero(),
        GroupStateVector(),
        **kwargs,
    )


def rules_of(findings):
    return {finding.rule for finding in findings}


# -- bug 1: stale high-water mark across spare reuse ------------------------


def _buggy_reset(self, group, colour=0):
    """Pre-fix ``_Chunk.reset``: ``high_water`` deliberately left stale."""
    self.group = group
    self.colour = colour
    self.cursor = self.base + _Chunk.HEADER_SIZE + colour
    self.live_regions = 0


def _force_spare_reuse(allocator):
    """Fill a chunk, drain it through displacement, and reuse it as a spare.

    Returns the addresses of the regions live in the *reused* chunk.
    """
    # Three 1 KiB regions fill a 4 KiB chunk (64-byte header).
    first = [allocator.malloc(1024) for _ in range(3)]
    displacing = allocator.malloc(1024)  # displaces the full chunk A
    for addr in first:
        allocator.free(addr)  # A empties away from current -> retired spare
    assert len(allocator._spares) == 1
    # Fill chunk B so the next request reuses spare A.
    fill = [allocator.malloc(1024) for _ in range(2)]
    reused = allocator.malloc(1024)
    assert allocator.chunks_reused == 1
    return [displacing, *fill, reused]


def test_spare_reuse_resets_high_water():
    allocator = make_group_allocator()
    _force_spare_reuse(allocator)
    snapshot = allocator.fragmentation()
    # Chunk A hosts one fresh 1 KiB region; chunk B holds three.  With the
    # stale mark, A would report its previous tenant's full 3 KiB bump
    # footprint on top.
    assert snapshot.high_water_bytes == 4 * 1024
    assert not validate_allocator(allocator)


def test_stale_high_water_is_detected(monkeypatch):
    monkeypatch.setattr(_Chunk, "reset", _buggy_reset)
    allocator = make_group_allocator()
    _force_spare_reuse(allocator)
    snapshot = allocator.fragmentation()
    assert snapshot.high_water_bytes == 6 * 1024  # over-reported by 2 KiB
    assert "group.high-water" in rules_of(validate_allocator(allocator))


# -- bug 2: displaced empty current chunk is orphaned -----------------------


def _buggy_group_malloc(self, group, size, alignment):
    """Pre-fix ``_group_malloc``: no retirement of a displaced empty chunk."""
    chunk = self._current.get(group)
    addr = chunk.try_reserve(size, alignment) if chunk is not None else None
    if addr is None:
        chunk = self._fresh_chunk(group)
        if chunk is None:
            return self._degrade(size, alignment)
        self._current[group] = chunk
        addr = chunk.try_reserve(size, alignment)
        if addr is None:
            return self._degrade(size, alignment)
    self._region_sizes[addr] = size
    self.grouped_live_bytes += size
    self.grouped_allocs += 1
    self.stats.on_alloc(size)
    return addr


def _displace_empty_current(allocator):
    """Empty the current chunk in place, then displace it.

    ``free`` skips retirement while a chunk is current, so displacement is
    the only point where the drained chunk can be reclaimed.
    """
    addr = allocator.malloc(1024)
    allocator.free(addr)  # current chunk now empty, cursor advanced
    # Cursor sits at 1024 + header; a near-payload request cannot fit and
    # displaces the (empty) current chunk.
    allocator.malloc(PAYLOAD)


def test_displaced_empty_chunk_is_recycled():
    allocator = make_group_allocator()
    _displace_empty_current(allocator)
    # The drained chunk was retired at displacement and immediately reused
    # as the fresh chunk; no second chunk was ever carved.
    assert allocator.chunks_created == 1
    assert allocator.chunks_reused == 1
    assert not validate_allocator(allocator)


def test_orphaned_chunk_is_detected(monkeypatch):
    monkeypatch.setattr(GroupAllocator, "_group_malloc", _buggy_group_malloc)
    allocator = make_group_allocator()
    _displace_empty_current(allocator)
    # Pre-fix: a second chunk is carved while the first leaks, unreachable.
    assert allocator.chunks_created == 2
    assert allocator.chunks_reused == 0
    assert "group.chunk-orphaned" in rules_of(validate_allocator(allocator))


# -- bug 3: realloc shrink leaves the recorded size stale -------------------


def _buggy_realloc(self, addr, new_size):
    """Pre-fix ``realloc``: the shrink path updates no bookkeeping."""
    chunk = self._chunk_of(addr)
    if chunk is None and addr not in self._region_sizes:
        return self.fallback.realloc(addr, new_size)
    old_size = self.size_of(addr)
    if new_size <= old_size:
        return addr
    new_addr = self.malloc(new_size)
    self.free(addr)
    return new_addr


def test_realloc_shrink_updates_accounting():
    allocator = make_group_allocator()
    addr = allocator.malloc(1024)
    assert allocator.realloc(addr, 256) == addr  # shrinks in place
    assert allocator.size_of(addr) == 256
    assert allocator.grouped_live_bytes == 256
    assert allocator.stats.live_bytes == 256
    assert allocator.free(addr) == 256
    assert allocator.grouped_live_bytes == 0
    assert not validate_allocator(allocator)


def test_stale_shrink_size_is_detected(monkeypatch):
    monkeypatch.setattr(GroupAllocator, "realloc", _buggy_realloc)
    allocator = make_group_allocator()
    shadow = ShadowHeap()
    addr = allocator.malloc(1024)
    shadow.malloc(addr, 1024)
    assert allocator.realloc(addr, 256) == addr
    shadow.realloc(addr, addr, 256)
    # The allocator still reports the stale pre-shrink size; the oracle
    # (which mirrors what the program asked for) disagrees.
    assert allocator.size_of(addr) == 1024
    drift = shadow.diff_live(allocator.iter_live_regions())
    assert {finding.rule for finding in drift} == {"shadow.size-drift"}


# -- cross-checks on the shared fixture -------------------------------------


def test_fixed_allocator_is_invariant_clean_under_churn():
    allocator = make_group_allocator(slab_size=16 * CHUNK)
    live = []
    for step in range(200):
        if live and step % 3 == 2:
            allocator.free(live.pop(0))
        elif live and step % 7 == 3:
            addr = live.pop()
            live.append(allocator.realloc(addr, 128 + (step % 512)))
        else:
            live.append(allocator.malloc(64 + (step * 37) % 900))
    assert not validate_allocator(allocator)
    for addr in live:
        allocator.free(addr)
    assert allocator.grouped_live_bytes == 0
    assert not validate_allocator(allocator)
