"""Unit tests for the heap-invariant checker.

Covers: clean allocators validate cleanly across all families, each
invariant rule fires on a directly corrupted state, the config
install/scope plumbing, and the machine-level size cross-check.
"""

import pickle

from repro.allocators import (
    AddressSpace,
    BumpAllocator,
    GroupAllocator,
    RandomPoolAllocator,
    SizeClassAllocator,
)
from repro.allocators.group import _Chunk
from repro.allocators.sharded import ShardedGroupAllocator
from repro.machine import GroupStateVector, Machine, ProgramBuilder
from repro.sanitize import (
    SanitizerConfig,
    active_sanitizer,
    clear_sanitizer,
    install_sanitizer,
    sanitizer_active,
    validate_allocator,
    validate_machine,
)

CHUNK = 4096


class _AlwaysGroupZero:
    def match(self, state):
        return 0


def make_group(cls=GroupAllocator, **kwargs):
    space = AddressSpace(0)
    kwargs.setdefault("chunk_size", CHUNK)
    kwargs.setdefault("slab_size", 4 * CHUNK)
    return cls(
        space, SizeClassAllocator(space), _AlwaysGroupZero(), GroupStateVector(), **kwargs
    )


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestConfigPlumbing:
    def test_install_active_clear(self):
        assert active_sanitizer() is None
        config = SanitizerConfig(check_interval=7)
        install_sanitizer(config)
        try:
            assert active_sanitizer() is config
        finally:
            clear_sanitizer()
        assert active_sanitizer() is None

    def test_scope_restores_previous(self):
        outer = SanitizerConfig(check_interval=1)
        inner = SanitizerConfig(check_interval=2)
        with sanitizer_active(outer):
            with sanitizer_active(inner):
                assert active_sanitizer() is inner
            assert active_sanitizer() is outer
        assert active_sanitizer() is None

    def test_config_is_picklable(self):
        config = SanitizerConfig(check_interval=64, shadow=False)
        assert pickle.loads(pickle.dumps(config)) == config


class TestCleanAllocators:
    def test_group_clean(self):
        allocator = make_group()
        live = [allocator.malloc(100 + i) for i in range(30)]
        for addr in live[::2]:
            allocator.free(addr)
        assert validate_allocator(allocator) == []

    def test_sharded_clean(self):
        allocator = make_group(cls=ShardedGroupAllocator)
        live = [allocator.malloc(48) for _ in range(40)]
        for addr in live[1::2]:
            allocator.free(addr)
        for _ in range(10):
            allocator.malloc(40)  # recycles freed shards
        assert validate_allocator(allocator) == []

    def test_size_class_clean(self):
        space = AddressSpace(0)
        allocator = SizeClassAllocator(space)
        live = [allocator.malloc(size) for size in (8, 24, 100, 5000, 20000)]
        allocator.free(live[2])
        assert validate_allocator(allocator) == []

    def test_bump_clean(self):
        allocator = BumpAllocator(AddressSpace(0), pool_size=1 << 16)
        for size in (8, 100, 4000):
            allocator.malloc(size)
        assert validate_allocator(allocator) == []

    def test_random_pools_clean(self):
        space = AddressSpace(0)
        allocator = RandomPoolAllocator(space, SizeClassAllocator(space))
        live = [allocator.malloc(64) for _ in range(20)]
        allocator.free(live[0])
        allocator.malloc(10000)  # forwarded
        assert validate_allocator(allocator) == []


class TestCorruptionDetection:
    """Every planted corruption maps to its dedicated rule."""

    def test_live_bytes_drift(self):
        allocator = make_group()
        addr = allocator.malloc(128)
        allocator._region_sizes[addr] = 160
        assert "group.live-bytes" in rules_of(validate_allocator(allocator))

    def test_live_regions_drift(self):
        allocator = make_group()
        addr = allocator.malloc(128)
        chunk = allocator._chunk_of(addr)
        chunk.live_regions += 1
        assert "group.live-regions" in rules_of(validate_allocator(allocator))

    def test_cursor_out_of_bounds(self):
        allocator = make_group()
        addr = allocator.malloc(128)
        chunk = allocator._chunk_of(addr)
        chunk.cursor = chunk.base + chunk.size + 64
        chunk.high_water = chunk.cursor
        assert "group.cursor-bounds" in rules_of(validate_allocator(allocator))

    def test_high_water_desync(self):
        allocator = make_group()
        addr = allocator.malloc(128)
        chunk = allocator._chunk_of(addr)
        chunk.high_water = chunk.cursor + 512
        assert "group.high-water" in rules_of(validate_allocator(allocator))

    def test_unregistered_chunk(self):
        allocator = make_group()
        addr = allocator.malloc(128)
        chunk = allocator._chunk_of(addr)
        del allocator._chunks[chunk.base]
        found = rules_of(validate_allocator(allocator))
        assert "group.region-orphan" in found
        assert "group.current-unregistered" in found

    def test_spare_with_live_regions(self):
        allocator = make_group()
        addr = allocator.malloc(128)
        chunk = allocator._chunk_of(addr)
        allocator._spares.append(chunk)
        found = rules_of(validate_allocator(allocator))
        assert "group.spare-live" in found
        assert "group.spare-current" in found

    def test_spare_bound(self):
        allocator = make_group(max_spare_chunks=0)
        chunk = _Chunk(0, CHUNK, 0)
        allocator._chunks[chunk.base] = chunk
        allocator._spares.extend([chunk, chunk])
        found = rules_of(validate_allocator(allocator))
        assert "group.spare-bound" in found
        assert "group.spare-duplicate" in found

    def test_region_overlap(self):
        allocator = make_group()
        addr = allocator.malloc(128)
        allocator.malloc(128)
        # Plant a fake region overlapping the first one.
        allocator._region_sizes[addr + 64] = 64
        chunk = allocator._chunk_of(addr)
        chunk.live_regions += 1
        allocator.grouped_live_bytes += 64
        allocator.stats.on_alloc(64)
        assert "region.overlap" in rules_of(validate_allocator(allocator))

    def test_stats_drift(self):
        allocator = make_group()
        allocator.malloc(128)
        allocator.stats.live_bytes += 1
        assert "group.stats-live-bytes" in rules_of(validate_allocator(allocator))

    def test_size_class_run_corruption(self):
        space = AddressSpace(0)
        allocator = SizeClassAllocator(space)
        addr = allocator.malloc(64)
        _, run = allocator._live[addr]
        run.live += 1
        found = rules_of(validate_allocator(allocator))
        assert "size-class.run-slots" in found
        assert "size-class.run-live" in found

    def test_size_class_large_leak(self):
        space = AddressSpace(0)
        allocator = SizeClassAllocator(space)
        addr = allocator.malloc(20000)
        del allocator._live[addr]
        allocator.stats.on_free(20000)
        assert "size-class.large-leak" in rules_of(validate_allocator(allocator))

    def test_bump_region_outside_pool(self):
        allocator = BumpAllocator(AddressSpace(0), pool_size=1 << 16)
        allocator.malloc(64)
        allocator._sizes[12345] = 8
        allocator.stats.on_alloc(8)
        assert "bump.region-bounds" in rules_of(validate_allocator(allocator))

    def test_random_pool_mismatch(self):
        space = AddressSpace(0)
        allocator = RandomPoolAllocator(space, SizeClassAllocator(space))
        addr = allocator.malloc(64)
        pool = allocator._pool_of[addr]
        del pool._sizes[addr]
        pool.stats.on_free(64)
        assert "random.pool-mismatch" in rules_of(validate_allocator(allocator))

    def test_sharded_free_list_live_clash(self):
        allocator = make_group(cls=ShardedGroupAllocator)
        addr = allocator.malloc(48)
        chunk = allocator._chunk_of(addr)
        chunk.shards.setdefault(48, []).append(addr)
        assert "sharded.free-live" in rules_of(validate_allocator(allocator))


class TestValidateMachine:
    def _machine(self):
        builder = ProgramBuilder("sanity")
        builder.call_site("main", "malloc")
        return Machine(builder.build(), SizeClassAllocator(AddressSpace(0)))

    def test_clean_machine(self):
        machine = self._machine()
        objs = [machine.malloc(64) for _ in range(5)]
        machine.free(objs[0])
        assert validate_machine(machine) == []
        assert machine.validate_heap() == []

    def test_size_mismatch_detected(self):
        machine = self._machine()
        obj = machine.malloc(64)
        machine.allocator._live[obj.addr] = (80, machine.allocator._live[obj.addr][1])
        machine.allocator.stats.live_bytes += 16
        found = rules_of(validate_machine(machine))
        assert "machine.size-mismatch" in found

    def test_unknown_object_detected(self):
        machine = self._machine()
        obj = machine.malloc(64)
        entry = machine.allocator._live.pop(obj.addr)
        machine.allocator.stats.on_free(entry[0])
        entry[1].give_back(obj.addr)
        found = rules_of(machine.validate_heap())
        assert "machine.unknown-object" in found
