"""Unit + property tests for the affinity queue/graph recorder.

Includes a brute-force reference implementation of the paper's queue (one
entry per macro access) that the optimised uniqued-window recorder is
checked against on random traces.
"""

from bisect import bisect_right
from collections import deque

import pytest
from hypothesis import given, settings, strategies as st

from repro.profiling import AffinityGraph, AffinityParams, AffinityRecorder, edge_key


def make_recorder(distance=128, max_object_size=4096):
    return AffinityRecorder(AffinityParams(distance=distance, max_object_size=max_object_size))


class TestAffinityParams:
    def test_defaults_match_paper(self):
        params = AffinityParams()
        assert params.distance == 128
        assert params.max_object_size == 4096
        assert params.node_coverage == 0.90

    @pytest.mark.parametrize(
        "kwargs", [dict(distance=0), dict(max_object_size=0), dict(node_coverage=0.0), dict(node_coverage=1.5)]
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AffinityParams(**kwargs)


class TestBasicAffinity:
    def test_adjacent_accesses_make_edge(self):
        rec = make_recorder()
        rec.on_alloc(1, 10, 32, 0)
        rec.on_alloc(2, 11, 32, 1)
        rec.record_access(1, 8)
        rec.record_access(2, 8)
        assert rec.graph.weight(10, 11) == 1.0

    def test_deduplication_of_consecutive_accesses(self):
        rec = make_recorder()
        rec.on_alloc(1, 10, 32, 0)
        rec.record_access(1, 8)
        rec.record_access(1, 8)
        rec.record_access(1, 8)
        assert rec.graph.accesses_of(10) == 1

    def test_no_self_affinity(self):
        rec = make_recorder()
        rec.on_alloc(1, 10, 32, 0)
        rec.on_alloc(2, 11, 32, 1)
        rec.record_access(1, 8)
        rec.record_access(2, 8)
        rec.record_access(1, 8)  # object 1 again: not affinitive with itself
        assert rec.graph.weight(10, 10) == 0.0

    def test_same_context_objects_form_loop_edge(self):
        rec = make_recorder()
        rec.on_alloc(1, 10, 32, 0)
        rec.on_alloc(2, 10, 32, 1)
        rec.record_access(1, 8)
        rec.record_access(2, 8)
        assert rec.graph.weight(10, 10) == 1.0

    def test_no_double_counting_per_traversal(self):
        rec = make_recorder()
        rec.on_alloc(1, 10, 32, 0)
        rec.on_alloc(2, 11, 32, 1)
        rec.on_alloc(3, 12, 32, 2)
        # 1 accessed, then 3, then 1 again, then 2: when 2 arrives, object 1
        # appears once (most recent occurrence) despite two accesses.
        rec.record_access(1, 8)
        rec.record_access(3, 8)
        rec.record_access(1, 8)
        rec.record_access(2, 8)
        assert rec.graph.weight(10, 11) == 1.0

    def test_window_bounded_by_distance(self):
        rec = make_recorder(distance=16)
        rec.on_alloc(1, 10, 32, 0)
        rec.on_alloc(2, 11, 32, 1)
        rec.on_alloc(3, 12, 32, 2)
        rec.record_access(1, 8)
        rec.record_access(3, 8)  # 8 bytes between 1 and anything later
        rec.record_access(3, 8)  # deduped
        rec.record_access(2, 8)  # bytes between (1, 2) = 8 < 16: affinitive
        assert rec.graph.weight(10, 11) == 1.0
        rec2 = make_recorder(distance=8)
        rec2.on_alloc(1, 10, 32, 0)
        rec2.on_alloc(2, 11, 32, 1)
        rec2.on_alloc(3, 12, 32, 2)
        rec2.record_access(1, 8)
        rec2.record_access(3, 8)
        rec2.record_access(2, 8)  # bytes between = 8 >= 8: not affinitive
        assert rec2.graph.weight(10, 11) == 0.0

    def test_big_objects_make_no_edges_but_count_accesses(self):
        rec = make_recorder(max_object_size=64)
        rec.on_alloc(1, 10, 128, 0)  # too big to group
        rec.on_alloc(2, 11, 32, 1)
        rec.record_access(1, 8)
        rec.record_access(2, 8)
        assert rec.graph.weight(10, 11) == 0.0
        assert rec.graph.accesses_of(10) == 1

    def test_unknown_object_ignored(self):
        rec = make_recorder()
        rec.record_access(99, 8)
        assert rec.graph.total_accesses == 0


class TestCoAllocatability:
    def test_intervening_alloc_from_same_context_blocks_edge(self):
        rec = make_recorder()
        rec.on_alloc(1, 10, 32, 0)
        rec.on_alloc(2, 10, 32, 1)  # context 10 allocates between 1 and 3
        rec.on_alloc(3, 11, 32, 2)
        rec.record_access(1, 8)
        rec.record_access(3, 8)
        assert rec.graph.weight(10, 11) == 0.0

    def test_intervening_alloc_from_other_context_allowed(self):
        rec = make_recorder()
        rec.on_alloc(1, 10, 32, 0)
        rec.on_alloc(2, 12, 32, 1)  # unrelated context
        rec.on_alloc(3, 11, 32, 2)
        rec.record_access(1, 8)
        rec.record_access(3, 8)
        assert rec.graph.weight(10, 11) == 1.0

    def test_chronologically_adjacent_same_context_pair(self):
        rec = make_recorder()
        rec.on_alloc(1, 10, 32, 0)
        rec.on_alloc(2, 10, 32, 1)
        rec.record_access(1, 8)
        rec.record_access(2, 8)
        assert rec.graph.weight(10, 10) == 1.0


class ReferenceRecorder:
    """Literal implementation of the paper's queue, used as an oracle."""

    def __init__(self, params: AffinityParams):
        self.params = params
        self.graph = AffinityGraph()
        self.queue = deque()  # (oid, cid, nbytes, seq, groupable)
        self.last = None
        self.objects = {}
        self.seqs = {}

    def on_alloc(self, oid, cid, size, seq):
        self.objects[oid] = (cid, seq, size < self.params.max_object_size)
        self.seqs.setdefault(cid, []).append(seq)

    def co_alloc(self, ca, sa, cb, sb):
        lo, hi = min(sa, sb), max(sa, sb)
        for ctx in {ca, cb}:
            seqs = self.seqs.get(ctx, [])
            i = bisect_right(seqs, lo)
            if i < len(seqs) and seqs[i] < hi:
                return False
        return True

    def record_access(self, oid, nbytes):
        if oid == self.last:
            return
        self.last = oid
        if oid not in self.objects:
            return
        cid, seq, groupable = self.objects[oid]
        self.graph.add_access(cid)
        between = 0
        seen = {oid}
        for v_oid, v_cid, v_bytes, v_seq, v_groupable in reversed(self.queue):
            if between >= self.params.distance:
                break
            if v_oid not in seen:
                seen.add(v_oid)
                if groupable and v_groupable and self.co_alloc(cid, seq, v_cid, v_seq):
                    self.graph.add_edge_weight(cid, v_cid, 1.0)
            between += v_bytes
        self.queue.append((oid, cid, nbytes, seq, groupable))


@st.composite
def traces(draw):
    n_objects = draw(st.integers(2, 12))
    n_contexts = draw(st.integers(1, 4))
    allocs = [
        (oid, draw(st.integers(0, n_contexts - 1)), draw(st.sampled_from([16, 32, 64, 200])))
        for oid in range(n_objects)
    ]
    accesses = draw(
        st.lists(
            st.tuples(st.integers(0, n_objects - 1), st.sampled_from([4, 8, 16])),
            min_size=1,
            max_size=80,
        )
    )
    distance = draw(st.sampled_from([8, 16, 64, 128]))
    return allocs, accesses, distance


class TestRecorderEquivalence:
    @given(traces())
    @settings(max_examples=150, deadline=None)
    def test_matches_reference_queue(self, trace):
        allocs, accesses, distance = trace
        params = AffinityParams(distance=distance, max_object_size=128)
        fast = AffinityRecorder(params)
        slow = ReferenceRecorder(params)
        for seq, (oid, cid, size) in enumerate(allocs):
            fast.on_alloc(oid, cid, size, seq)
            slow.on_alloc(oid, cid, size, seq)
        for oid, nbytes in accesses:
            fast.record_access(oid, nbytes)
            slow.record_access(oid, nbytes)
        assert fast.graph.edges == slow.graph.edges
        assert fast.graph.node_accesses == slow.graph.node_accesses


class TestGraphOperations:
    def _graph(self):
        g = AffinityGraph()
        g.add_access(0, 100)
        g.add_access(1, 50)
        g.add_access(2, 5)
        g.add_edge_weight(0, 1, 10.0)
        g.add_edge_weight(1, 2, 1.0)
        g.add_edge_weight(2, 2, 3.0)
        return g

    def test_edge_key_canonical(self):
        assert edge_key(3, 1) == (1, 3)
        assert edge_key(1, 1) == (1, 1)

    def test_weight_symmetric(self):
        g = self._graph()
        assert g.weight(1, 0) == 10.0

    def test_coverage_filter_drops_cold_nodes(self):
        g = self._graph()
        filtered = g.filtered_by_coverage(0.90)
        assert 0 in filtered.nodes and 1 in filtered.nodes
        assert 2 not in filtered.nodes
        # total accesses preserved from the full graph
        assert filtered.total_accesses == g.total_accesses
        # edges touching dropped nodes removed
        assert filtered.weight(1, 2) == 0.0

    def test_coverage_one_keeps_everything(self):
        g = self._graph()
        assert g.filtered_by_coverage(1.0).nodes == g.nodes

    def test_coverage_invalid(self):
        with pytest.raises(ValueError):
            self._graph().filtered_by_coverage(0.0)

    def test_min_weight_filter(self):
        g = self._graph().filtered_by_min_weight(2.0)
        assert g.weight(0, 1) == 10.0
        assert g.weight(1, 2) == 0.0
        assert g.weight(2, 2) == 3.0

    def test_induced_subgraph(self):
        g = self._graph().induced({1, 2})
        assert g.nodes == {1, 2}
        assert g.weight(0, 1) == 0.0
        assert g.weight(1, 2) == 1.0

    def test_edges_of_includes_loops(self):
        g = self._graph()
        keys = {key for key, _ in g.edges_of(2)}
        assert keys == {(1, 2), (2, 2)}

    def test_to_networkx(self):
        nxg = self._graph().to_networkx()
        assert nxg.number_of_nodes() == 3
        assert nxg[0][1]["weight"] == 10.0
        assert nxg.nodes[0]["accesses"] == 100
