"""Bench regression gate: baseline adapters, CLI, and the CI entry point.

The gate has to fail loudly on a real regression, pass quietly within
tolerance, and skip (not fail) checks whose inputs a partial run never
produced — otherwise CI either rubber-stamps regressions or flakes on
runs that legitimately exercised only half the pipeline.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.obs import snapshot_to_json
from repro.obs.metrics import MetricsSnapshot
from repro.obs.regression import compare_snapshot, run_gate

REPO = Path(__file__).resolve().parent.parent

EVAL_BASELINE = {
    "serial_phases": {"profile_s": 2.0, "analyse_s": 3.0, "measure_s": 10.0},
}

TRACE_BASELINE = {
    "trace_events": 1000,
    "replay_sweep_wall_s": 2.0,  # -> 500 events/s baseline
    "record_once_wall_s": 1.0,  # -> 1000 events/s baseline
}


def phase_snapshot(profile=1.0, analyse=1.0, measure=1.0) -> MetricsSnapshot:
    """Snapshot with just the three phase wall-time counters."""
    return MetricsSnapshot(
        counters={
            'phase.seconds{phase="profile"}': profile,
            'phase.seconds{phase="analyse"}': analyse,
            'phase.seconds{phase="measure"}': measure,
        }
    )


def throughput_snapshot(replay_s=1.0, record_s=1.0) -> MetricsSnapshot:
    """Snapshot with 1000 replayed + recorded events over given seconds."""
    return MetricsSnapshot(
        counters={
            'trace.replay.events{workload="health"}': 1000,
            'trace.replay.seconds{workload="health"}': replay_s,
            'trace.record.events{workload="health"}': 1000,
            'trace.record.seconds{workload="health"}': record_s,
        }
    )


class TestEvalWalltimeAdapter:
    def test_within_tolerance_passes(self):
        checks = compare_snapshot(phase_snapshot(2.5, 3.5, 12.0), EVAL_BASELINE, 0.5)
        assert [c.status for c in checks] == ["ok", "ok", "ok"]

    def test_regression_fails(self):
        checks = compare_snapshot(phase_snapshot(measure=100.0), EVAL_BASELINE, 0.5)
        by_name = {c.name: c for c in checks}
        assert by_name["measure wall time"].status == "FAIL"
        assert by_name["profile wall time"].status == "ok"

    def test_upper_limit_is_baseline_times_tolerance(self):
        (check,) = [
            c
            for c in compare_snapshot(phase_snapshot(), EVAL_BASELINE, 0.25)
            if c.name == "analyse wall time"
        ]
        assert check.limit == pytest.approx(3.0 * 1.25)

    def test_missing_phase_skips(self):
        checks = compare_snapshot(MetricsSnapshot(), EVAL_BASELINE, 0.5)
        assert all(c.status == "skipped" for c in checks)
        assert all(c.ok for c in checks)  # vacuous pass


class TestTraceReplayAdapter:
    def test_within_tolerance_passes(self):
        # 1000 ev / 2.2 s = ~455 ev/s vs limit 500/1.5 = 333 ev/s.
        checks = compare_snapshot(throughput_snapshot(replay_s=2.2), TRACE_BASELINE, 0.5)
        assert {c.name: c.status for c in checks} == {
            "replay throughput": "ok",
            "record throughput": "ok",
        }

    def test_slow_replay_fails(self):
        checks = compare_snapshot(throughput_snapshot(replay_s=50.0), TRACE_BASELINE, 0.5)
        by_name = {c.name: c for c in checks}
        assert by_name["replay throughput"].status == "FAIL"
        assert by_name["record throughput"].status == "ok"

    def test_lower_limit_is_baseline_over_tolerance(self):
        checks = compare_snapshot(throughput_snapshot(), TRACE_BASELINE, 1.0)
        by_name = {c.name: c for c in checks}
        assert by_name["replay throughput"].limit == pytest.approx(250.0)
        assert by_name["record throughput"].limit == pytest.approx(500.0)

    def test_no_trace_counters_skips(self):
        checks = compare_snapshot(phase_snapshot(), TRACE_BASELINE, 0.5)
        assert all(c.status == "skipped" for c in checks)


class TestSchemaDetection:
    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="unrecognised baseline schema"):
            compare_snapshot(MetricsSnapshot(), {"something": "else"}, 0.5)

    def test_run_gate_reports_pass_and_fail(self, tmp_path):
        baseline = tmp_path / "BENCH_eval.json"
        baseline.write_text(json.dumps(EVAL_BASELINE))
        passed, report = run_gate(phase_snapshot(), baseline, tolerance=0.5)
        assert passed
        assert "PASS: 3/3 checks ran" in report
        passed, report = run_gate(phase_snapshot(measure=99.0), baseline, tolerance=0.5)
        assert not passed
        assert "FAIL" in report

    def test_committed_baselines_parse(self):
        """The real BENCH_*.json files must keep matching an adapter."""
        for name in ("BENCH_eval_walltime.json", "BENCH_trace_replay.json"):
            baseline = json.loads((REPO / name).read_text())
            checks = compare_snapshot(MetricsSnapshot(), baseline, 0.5)
            assert checks, f"{name} produced no checks"


class TestObsCheckCli:
    @pytest.fixture()
    def snapshot_file(self, tmp_path):
        """A phase snapshot on disk, as --metrics-out would write it."""
        path = tmp_path / "metrics.json"
        path.write_text(snapshot_to_json(phase_snapshot()))
        return path

    @pytest.fixture()
    def baseline_file(self, tmp_path):
        """A small eval_walltime baseline on disk."""
        path = tmp_path / "BENCH_eval.json"
        path.write_text(json.dumps(EVAL_BASELINE))
        return path

    def test_pass_exits_zero(self, snapshot_file, baseline_file, capsys):
        ret = cli_main(
            ["obs", "check", "-i", str(snapshot_file), "--baseline", str(baseline_file)]
        )
        assert ret == 0
        assert "PASS" in capsys.readouterr().out

    def test_fail_exits_one(self, tmp_path, baseline_file, capsys):
        snap = tmp_path / "bad.json"
        snap.write_text(snapshot_to_json(phase_snapshot(measure=99.0)))
        ret = cli_main(["obs", "check", "-i", str(snap), "--baseline", str(baseline_file)])
        assert ret == 1
        assert "FAIL" in capsys.readouterr().out

    def test_tolerance_flag_rescues_failure(self, tmp_path, baseline_file):
        snap = tmp_path / "slow.json"
        snap.write_text(snapshot_to_json(phase_snapshot(measure=20.0)))
        assert cli_main(["obs", "check", "-i", str(snap), "--baseline", str(baseline_file)]) == 1
        assert (
            cli_main(
                ["obs", "check", "-i", str(snap), "--baseline", str(baseline_file),
                 "--tolerance", "3.0"]
            )
            == 0
        )

    def test_missing_snapshot_exits_cleanly(self, tmp_path, baseline_file):
        with pytest.raises(SystemExit):
            cli_main(
                ["obs", "check", "-i", str(tmp_path / "nope.json"),
                 "--baseline", str(baseline_file)]
            )

    def test_bad_baseline_exits_two(self, snapshot_file, tmp_path, capsys):
        bad = tmp_path / "bad_baseline.json"
        bad.write_text('{"something": "else"}')
        ret = cli_main(["obs", "check", "-i", str(snapshot_file), "--baseline", str(bad)])
        assert ret == 2
        assert "error" in capsys.readouterr().err


class TestStandaloneTool:
    def run_tool(self, *argv: str) -> subprocess.CompletedProcess:
        """Invoke tools/check_regression.py as CI does."""
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        return subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_regression.py"), *argv],
            capture_output=True, text=True, env=env, cwd=REPO,
        )

    def test_pass_and_fail_exit_codes(self, tmp_path):
        baseline = tmp_path / "BENCH_eval.json"
        baseline.write_text(json.dumps(EVAL_BASELINE))
        good = tmp_path / "good.json"
        good.write_text(snapshot_to_json(phase_snapshot()))
        bad = tmp_path / "bad.json"
        bad.write_text(snapshot_to_json(phase_snapshot(measure=99.0)))

        result = self.run_tool("--snapshot", str(good), "--baseline", str(baseline))
        assert result.returncode == 0, result.stderr
        assert "PASS" in result.stdout
        result = self.run_tool("--snapshot", str(bad), "--baseline", str(baseline))
        assert result.returncode == 1
        assert "FAIL" in result.stdout

    def test_missing_inputs_exit_two(self, tmp_path):
        result = self.run_tool(
            "--snapshot", str(tmp_path / "nope.json"),
            "--baseline", str(REPO / "BENCH_eval_walltime.json"),
        )
        assert result.returncode == 2
        assert "error" in result.stderr
