"""Meta-tests: documentation coverage of the public API.

Deliverable hygiene — every public module, class, and function in the
library carries a docstring, and the package exports what it promises.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.split(".")[-1].startswith("_")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_members_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module_name:
            continue  # re-export; documented at home
        if not (inspect.getdoc(member) or "").strip():
            undocumented.append(name)
            continue
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                # getdoc resolves inherited docstrings: an override that
                # keeps its base-class contract needs no restatement.
                if not (inspect.getdoc(getattr(member, method_name)) or "").strip():
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, f"{module_name}: missing docstrings on {undocumented}"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, f"repro.{name} missing"


def test_version_present():
    assert repro.__version__
