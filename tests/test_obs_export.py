"""Golden tests for the observability exporters.

A hand-built snapshot with fixed values pins the exact output of every
format — field order, rounding, label sorting, help text.  Any diff here
means downstream consumers (Prometheus scrapers, Perfetto, log shippers)
would see a format change; deliberate changes must update the goldens in
the same commit.
"""

import json

import pytest

from repro.obs import export
from repro.obs.metrics import HistogramData, MetricsSnapshot, SpanData


def sample_snapshot() -> MetricsSnapshot:
    """A small snapshot exercising every exporter feature.

    Two processes (pids 101/202), nested spans, a labelled counter, a
    bare counter, a gauge, and a histogram with under/in/overflow
    observations.
    """
    hist = HistogramData(buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    return MetricsSnapshot(
        counters={
            'measure.runs{config="halo",workload="health"}': 2,
            "analyse.runs": 1,
        },
        gauges={'profile.affinity_queue_len{program="health"}': 16},
        histograms={'harness.task_seconds{kind="measure"}': hist},
        spans=[
            SpanData("phase.profile", 0.5, 1.25, 0, -1, 101, {"workload": "health"}),
            SpanData("phase.measure", 2.0, 0.125, 1, 0, 101, {}),
            SpanData("phase.profile", 0.25, 2.0, 0, -1, 202, {"source": "trace"}),
        ],
    )


GOLDEN_PROMETHEUS = """\
# HELP halo_analyse_runs_total Grouping/identification pipeline executions.
# TYPE halo_analyse_runs_total counter
halo_analyse_runs_total 1
# HELP halo_measure_runs_total Finished measurement runs (workload seeds executed).
# TYPE halo_measure_runs_total counter
halo_measure_runs_total{config="halo",workload="health"} 2
# HELP halo_profile_affinity_queue_len Affinity sliding-window queue length at harvest (gauge).
# TYPE halo_profile_affinity_queue_len gauge
halo_profile_affinity_queue_len{program="health"} 16
# HELP halo_harness_task_seconds Per-task wall latency histogram (label: kind).
# TYPE halo_harness_task_seconds histogram
halo_harness_task_seconds_bucket{kind="measure",le="0.1"} 1
halo_harness_task_seconds_bucket{kind="measure",le="1"} 2
halo_harness_task_seconds_bucket{kind="measure",le="+Inf"} 3
halo_harness_task_seconds_sum{kind="measure"} 5.55
halo_harness_task_seconds_count{kind="measure"} 3
"""

GOLDEN_JSONL = """\
{"type":"counter","name":"analyse.runs","labels":{},"value":1}
{"type":"counter","name":"measure.runs","labels":{"config":"halo","workload":"health"},"value":2}
{"type":"gauge","name":"profile.affinity_queue_len","labels":{"program":"health"},"value":16}
{"type":"histogram","name":"harness.task_seconds","labels":{"kind":"measure"},"buckets":[0.1,1.0],"counts":[1,1,1],"sum":5.55,"count":3}
{"type":"span","name":"phase.profile","start":0.5,"duration":1.25,"depth":0,"parent":-1,"pid":101,"attrs":{"workload":"health"}}
{"type":"span","name":"phase.measure","start":2.0,"duration":0.125,"depth":1,"parent":0,"pid":101,"attrs":{}}
{"type":"span","name":"phase.profile","start":0.25,"duration":2.0,"depth":0,"parent":-1,"pid":202,"attrs":{"source":"trace"}}
"""


class TestPrometheus:
    def test_golden(self):
        assert export.to_prometheus(sample_snapshot()) == GOLDEN_PROMETHEUS

    def test_empty_snapshot(self):
        assert export.to_prometheus(MetricsSnapshot()) == ""

    def test_bucket_counts_are_cumulative(self):
        text = export.to_prometheus(sample_snapshot())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if "_bucket{" in line
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 3  # +Inf bucket holds the full count


class TestJsonl:
    def test_golden(self):
        assert export.to_jsonl(sample_snapshot()) == GOLDEN_JSONL

    def test_every_line_parses(self):
        for line in export.to_jsonl(sample_snapshot()).splitlines():
            obj = json.loads(line)
            assert obj["type"] in {"counter", "gauge", "histogram", "span"}


class TestChromeTrace:
    #: Field order required of every "X" (complete) event; pinned so the
    #: file diffs clean and stays loadable in Perfetto/chrome://tracing.
    X_EVENT_FIELDS = ["name", "cat", "ph", "ts", "dur", "pid", "tid", "args"]

    def test_schema(self):
        doc = json.loads(export.to_chrome_trace(sample_snapshot()))
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert [m["pid"] for m in metas] == [101, 202]
        assert all(m["name"] == "process_name" for m in metas)
        assert len(complete) == 3
        for event in complete:
            assert list(event) == self.X_EVENT_FIELDS
            assert event["cat"] == "halo"
            assert isinstance(event["ts"], float)
            assert event["dur"] >= 0

    def test_microsecond_conversion(self):
        doc = json.loads(export.to_chrome_trace(sample_snapshot()))
        first = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert first["ts"] == 500000.0
        assert first["dur"] == 1250000.0

    def test_deterministic(self):
        assert export.to_chrome_trace(sample_snapshot()) == export.to_chrome_trace(
            sample_snapshot()
        )


class TestSnapshotRoundTrip:
    def test_json_round_trip(self):
        snap = sample_snapshot()
        assert export.snapshot_from_json(export.snapshot_to_json(snap)) == snap

    def test_rejects_foreign_json(self):
        with pytest.raises(ValueError, match="halo-metrics-v1"):
            export.snapshot_from_json('{"hello": "world"}')
        with pytest.raises(ValueError):
            export.snapshot_from_json("[]")


class TestRenderDispatch:
    def test_all_formats(self):
        snap = sample_snapshot()
        for fmt in export.EXPORT_FORMATS:
            assert export.render(snap, fmt)

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown export format"):
            export.render(sample_snapshot(), "xml")
