"""Microbenchmarks of the system's hot components (pytest-benchmark).

These time the pieces whose cost the paper discusses: the profiler's
affinity queue (the dominant Pin-tool cost), SEQUITUR compression (the HDS
analysis cost), the cache simulator, both allocators' fast paths, the
grouping algorithm and the compiled selector matcher.
"""

import random

from repro.allocators import AddressSpace, GroupAllocator, SizeClassAllocator
from repro.cache import CacheHierarchy
from repro.core import CompiledMatcher, GroupSelector, GroupingParams, group_contexts
from repro.hds import Sequitur, extract_hot_streams
from repro.machine import GroupStateVector
from repro.profiling import AffinityParams, AffinityRecorder


def _access_stream(n, objects, seed=0):
    rng = random.Random(seed)
    return [(rng.randrange(objects), 8) for _ in range(n)]


def test_affinity_recorder_throughput(benchmark):
    """Profiling hot loop: 50k accesses over 500 objects, A=128."""
    accesses = _access_stream(50_000, 500)

    def run():
        recorder = AffinityRecorder(AffinityParams(distance=128))
        for oid in range(500):
            recorder.on_alloc(oid, oid % 24, 32, oid)
        for oid, nbytes in accesses:
            recorder.record_access(oid, nbytes)
        return len(recorder.graph.edges)

    assert benchmark(run) > 0


def test_affinity_recorder_large_window(benchmark):
    """Same stream with A=8192: cost must stay near the A=128 case."""
    accesses = _access_stream(4_000, 500)

    def run():
        recorder = AffinityRecorder(AffinityParams(distance=8192))
        for oid in range(500):
            recorder.on_alloc(oid, oid % 24, 32, oid)
        for oid, nbytes in accesses:
            recorder.record_access(oid, nbytes)
        return len(recorder.graph.edges)

    assert benchmark(run) > 0


def test_sequitur_compression(benchmark):
    """HDS analysis: compress a 40k-symbol trace with heavy repetition."""
    block = list(range(400))
    trace = block * 100

    def run():
        grammar = Sequitur.from_sequence(trace)
        return len(grammar.rules)

    assert benchmark(run) >= 1


def test_hot_stream_extraction(benchmark):
    rng = random.Random(1)
    trace = []
    for _ in range(200):
        start = rng.randrange(0, 50)
        trace.extend(range(start, start + 40))

    def run():
        return extract_hot_streams(trace).stream_count

    assert benchmark(run) > 0


def test_cache_hierarchy_throughput(benchmark):
    """100k mixed accesses through L1/L2/L3 + TLB."""
    rng = random.Random(2)
    addresses = [rng.randrange(0, 4 << 20) for _ in range(100_000)]

    def run():
        memory = CacheHierarchy()
        for addr in addresses:
            memory.access(addr, 8)
        return memory.snapshot().l1_misses

    assert benchmark(run) > 0


def test_size_class_allocator_fast_path(benchmark):
    """50k malloc/free pairs through the jemalloc-like baseline."""

    def run():
        allocator = SizeClassAllocator(AddressSpace(0))
        addrs = [allocator.malloc(32 + (i % 8) * 16) for i in range(25_000)]
        for addr in addrs:
            allocator.free(addr)
        return allocator.stats.total_allocs

    assert benchmark(run) == 25_000


class _RoundRobin:
    def __init__(self, n):
        self.n = n
        self.i = 0

    def match(self, state):
        self.i += 1
        return self.i % self.n


def test_group_allocator_fast_path(benchmark):
    """50k grouped malloc/free pairs across 4 groups."""

    def run():
        space = AddressSpace(0)
        allocator = GroupAllocator(
            space, SizeClassAllocator(space), _RoundRobin(4), GroupStateVector()
        )
        addrs = [allocator.malloc(48) for _ in range(25_000)]
        for addr in addrs:
            allocator.free(addr)
        return allocator.grouped_allocs

    assert benchmark(run) == 25_000


def test_grouping_algorithm(benchmark):
    """Figure 6 grouping on a 60-node affinity graph."""
    from repro.profiling import AffinityGraph

    rng = random.Random(3)
    graph = AffinityGraph()
    for node in range(60):
        graph.add_access(node, rng.randrange(10, 10_000))
    for _ in range(400):
        a, b = rng.randrange(60), rng.randrange(60)
        graph.add_edge_weight(a, b, rng.uniform(1, 500))

    def run():
        return len(group_contexts(graph, GroupingParams(group_threshold=0.0)))

    assert benchmark(run) >= 1


def test_selector_matcher(benchmark):
    """1M selector evaluations (the per-malloc identification cost)."""
    selectors = [
        GroupSelector(g, (frozenset({g * 3, g * 3 + 1}), frozenset({g * 3 + 2})))
        for g in range(1, 8)
    ]
    plan = {site: bit for bit, site in enumerate(sorted({s for sel in selectors for s in sel.sites}))}
    matcher = CompiledMatcher(selectors, plan)
    states = [random.Random(4).getrandbits(21) for _ in range(1000)]

    def run():
        hits = 0
        for _ in range(1000):
            for state in states:
                if matcher.match(state) is not None:
                    hits += 1
        return hits

    assert benchmark(run) >= 0
