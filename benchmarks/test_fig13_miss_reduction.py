"""Regenerates paper Figure 13: L1D cache-miss reduction, HDS vs HALO.

Prints both series for all 11 benchmarks and checks the figure's
qualitative claims:

* HALO reduces misses on the six prior-work benchmarks *and* the complex
  CPU2017 ones (povray, omnetpp, xalanc, leela);
* the hot-data-streams technique matches HALO only on the prior-work
  benchmarks, achieves nothing on the wrapper/operator-new programs, and
  *increases* misses on roms;
* roms also exhibits the §5.2 representation blow-up (a handful of affinity
  graph nodes versus orders of magnitude more hot data streams).
"""

from repro.harness import reproduce

from conftest import print_series

PRIOR_WORK = ("health", "ft", "analyzer", "ammp", "art", "equake")
WRAPPER = ("povray", "omnetpp", "xalanc", "leela")


def test_figure13(benchmark, evaluations):
    result = benchmark.pedantic(
        lambda: reproduce.figure13(evaluations), rounds=1, iterations=1
    )
    hds = result.series[0].values
    halo = result.series[1].values
    print_series("Figure 13 — Chilimbi et al. (HDS) L1D miss reduction", hds)
    print_series("Figure 13 — HALO L1D miss reduction", halo)

    # HALO helps everywhere the paper says it does.
    for name in PRIOR_WORK + ("povray", "omnetpp", "xalanc", "leela"):
        assert halo[name] > 0.02, f"HALO should reduce misses on {name}"
    # ... and is at worst neutral on roms.
    assert halo["roms"] > -0.03

    # HDS tracks HALO on the easy targets...
    for name in PRIOR_WORK:
        assert hds[name] > 0.02, f"HDS should work on {name}"
    # ... fails on the wrapper/operator-new programs...
    for name in WRAPPER:
        assert abs(hds[name]) < 0.02, f"HDS should be inert on {name}"
    # ... and actively hurts roms.
    assert hds["roms"] < -0.02

    # Headline: health is the strongest benchmark, ~20 % band.
    assert halo["health"] > 0.15


def test_roms_representation_blowup(benchmark):
    comparison = benchmark.pedantic(
        reproduce.roms_representation_blowup, rounds=1, iterations=1
    )
    print(
        f"\nroms representation: affinity graph nodes = "
        f"{comparison.affinity_graph_nodes}, hot data streams = {comparison.hot_streams}"
    )
    assert comparison.affinity_graph_nodes <= 31
    assert comparison.hot_streams > 50 * comparison.affinity_graph_nodes
