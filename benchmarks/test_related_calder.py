"""Related-work comparison: Calder et al.'s name-based placement (§2.2.3).

The HALO paper positions fixed-window stack naming as a predecessor whose
"fixed-sized contexts" limit what it can characterise.  This bench runs the
replication head-to-head with HALO on the two poles:

* **health** — shallow, distinct allocation paths: the 4-frame XOR name
  separates hot from cold just like HALO's full contexts;
* **xalanc** — every allocation reaches ``malloc`` through the same deep
  allocator plumbing, so all names collide and the scheme can form no
  useful groups, while HALO's full-context selectors keep their win.
"""

import os

from repro.calder import CalderParams
from repro.calder import profile_workload as calder_profile
from repro.core import optimise_profile, profile_workload
from repro.harness.reproduce import halo_params_for
from repro.harness.runner import measure_baseline, measure_calder, measure_halo
from repro.workloads import get_workload

SCALE = os.environ.get("REPRO_BENCH_SCALE", "ref")

BENCHES = ("health", "xalanc")


def test_calder_vs_halo(benchmark):
    def run_all():
        results = {}
        for name in BENCHES:
            workload = get_workload(name)
            halo_params = halo_params_for(workload)
            profile = profile_workload(workload, halo_params, scale="test")
            halo_artifacts = optimise_profile(profile, halo_params)
            calder_artifacts = calder_profile(get_workload(name), CalderParams())

            base = measure_baseline(get_workload(name), scale=SCALE, seed=1)
            halo = measure_halo(get_workload(name), halo_artifacts, scale=SCALE, seed=1)
            calder = measure_calder(
                get_workload(name), calder_artifacts, scale=SCALE, seed=1
            )

            def reduction(m):
                return (base.cache.l1_misses - m.cache.l1_misses) / base.cache.l1_misses

            results[name] = {
                "halo": reduction(halo),
                "calder": reduction(calder),
                "calder_groups": len(calder_artifacts.groups),
                "calder_names": calder_artifacts.distinct_names,
            }
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\nL1D miss reduction: HALO vs Calder-style name-based placement")
    print(f"  {'benchmark':8s} {'HALO':>8s} {'Calder':>8s} {'names':>6s}")
    for name, r in results.items():
        print(
            f"  {name:8s} {r['halo'] * 100:+7.1f}% {r['calder'] * 100:+7.1f}% "
            f"{r['calder_names']:6d}"
        )

    # Shallow paths: the name window is enough — Calder lands near HALO.
    assert results["health"]["calder"] > 0.5 * results["health"]["halo"]
    # Deep plumbing: all names collide, Calder gets (at best) noise.
    assert results["xalanc"]["calder"] < 0.25 * results["xalanc"]["halo"]
    assert results["xalanc"]["halo"] > 0.10
