"""Regenerates paper Figure 12: omnetpp time vs affinity distance.

The paper sweeps A over powers of two and finds a broad sweet spot around
A = 128 (the value used in the evaluation), with degradation at very large
distances where the window starts absorbing unrelated contexts into the
groups.  The bench sweeps a condensed set of distances (profiling cost
grows with the window; see the figure12 docstring) and checks:

* the selected default (128) performs at least as well as the extremes;
* large distances do not beat the sweet spot;
* every sweep point stays within a sane band of the baseline.
"""

import os

from repro.harness import reproduce

DISTANCES = (8, 32, 128, 512, 2048, 8192)
SCALE = os.environ.get("REPRO_BENCH_SCALE", "ref")
TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "1"))


def test_figure12(benchmark):
    result = benchmark.pedantic(
        lambda: reproduce.figure12(distances=DISTANCES, trials=TRIALS, scale=SCALE),
        rounds=1,
        iterations=1,
    )
    baseline = result.notes["baseline"]
    times = result.series[0].values
    print(f"\nFigure 12 — omnetpp cycles vs affinity distance (baseline {baseline:,.0f})")
    for distance, cycles in times.items():
        delta = cycles / baseline - 1.0
        print(f"  A={distance:>6s}: {cycles:15,.0f}  ({delta * 100:+6.2f}% vs baseline)")

    best = min(times.values())
    at_128 = times["128"]
    # The paper's chosen distance sits in the sweet spot.
    assert at_128 <= best * 1.02
    assert at_128 < baseline  # beats the unmodified program
    # Large distances do not improve on the sweet spot.
    assert times["8192"] >= at_128 * 0.99
    # Nothing in the sweep is catastrophically worse than baseline.
    assert all(cycles < baseline * 1.10 for cycles in times.values())
