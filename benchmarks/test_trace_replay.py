"""Wall-clock baseline for trace-driven parameter sweeps.

Times one grouping-tolerance sweep two ways — direct (re-execute the
workload and re-profile for every configuration, the only option before
the trace subsystem existed) and warm-trace replay (record the event
stream once, then :func:`~repro.trace.sweep.sweep_merge_tolerances`
against the decoded trace) — checks the two produce identical grouping
artifacts, and records the honest numbers in ``BENCH_trace_replay.json``
at the repository root.

The replay path wins twice: the workload's Python object churn is gone
(events stream out of one decoded buffer), and configurations sharing
affinity parameters share a single profile replay.  A grouping-only
sweep therefore replays the profiler exactly once for N configs.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_trace_replay.py -s
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from repro.core.pipeline import HaloParams, optimise_profile, profile_workload
from repro.trace import record_workload, sweep_merge_tolerances
from repro.workloads.base import get_workload

BENCHMARK = os.environ.get("REPRO_BENCH_TRACE_WORKLOAD", "health")
SCALE = os.environ.get("REPRO_BENCH_SCALE", "test")
TOLERANCES = (0.05, 0.1, 0.2, 0.4, 0.8)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_trace_replay.json"


def _digest(artifacts) -> list[dict]:
    return [
        {
            "groups": len(a.groups),
            "group_sizes": sorted(len(g.members) for g in a.groups),
            "plan_sites": len(a.plan.bit_for_site),
        }
        for a in artifacts
    ]


def test_trace_sweep_walltime(tmp_path):
    workload = get_workload(BENCHMARK)
    configs = [
        replace(HaloParams(), grouping=replace(HaloParams().grouping, merge_tolerance=t))
        for t in TOLERANCES
    ]

    # Direct: the pre-trace cost model — every configuration re-executes
    # the workload under the profiler.
    start = time.perf_counter()
    direct = [
        optimise_profile(profile_workload(workload, config, scale=SCALE), config)
        for config in configs
    ]
    direct_wall = time.perf_counter() - start

    # Record once (the cold cost a cache pays a single time per workload).
    start = time.perf_counter()
    trace = record_workload(workload, scale=SCALE)
    record_wall = time.perf_counter() - start

    # Warm replay: sweep every configuration from the recorded events.
    start = time.perf_counter()
    replayed = sweep_merge_tolerances(trace, workload.program, TOLERANCES)
    replay_wall = time.perf_counter() - start

    assert _digest(direct) == _digest(replayed.values())

    speedup = direct_wall / replay_wall
    # The acceptance bar: a warm sweep beats re-execution by >= 2x.
    assert speedup >= 2.0, f"warm sweep only {speedup:.2f}x faster than direct"

    record = {
        "workload": BENCHMARK,
        "scale": SCALE,
        "merge_tolerances": list(TOLERANCES),
        "configs": len(TOLERANCES),
        "trace_events": trace.header.events,
        "trace_bytes": len(trace.to_bytes()),
        "direct_wall_s": round(direct_wall, 2),
        "record_once_wall_s": round(record_wall, 2),
        "replay_sweep_wall_s": round(replay_wall, 2),
        "warm_speedup": round(speedup, 2),
    }
    RESULTS_PATH.write_text(json.dumps(record, indent=1) + "\n")
    print(f"\ndirect {direct_wall:.2f}s   record-once {record_wall:.2f}s   "
          f"warm sweep {replay_wall:.2f}s   ({speedup:.1f}x)")
    print(f"wrote {RESULTS_PATH}")
