"""Regenerates paper Figure 14: execution-time speedup, HDS vs HALO.

Checks the figure's qualitative claims:

* HALO's largest speedup is on health (paper: ~28 %), with xalanc second
  (paper: ~16 %) and a solid omnetpp win (~4 %);
* HALO consistently matches or beats the hot-data-streams technique;
* povray and leela barely speed up despite reduced misses (compute-bound:
  "their overall execution times remain largely unchanged");
* no benchmark is significantly degraded by HALO ("its optimisations do
  not degrade performance in these cases, but rather simply fail at
  improving it").
"""

from repro.harness import reproduce

from conftest import print_series


def test_figure14(benchmark, evaluations):
    result = benchmark.pedantic(
        lambda: reproduce.figure14(evaluations), rounds=1, iterations=1
    )
    hds = result.series[0].values
    halo = result.series[1].values
    print_series("Figure 14 — Chilimbi et al. (HDS) speedup", hds)
    print_series("Figure 14 — HALO speedup", halo)

    # health is the headline (paper: ~28 %; generous band for sim noise).
    assert halo["health"] > 0.18
    assert halo["health"] == max(halo.values())
    # xalanc's double-digit speedup with HDS at zero.
    assert halo["xalanc"] > 0.08
    assert abs(hds["xalanc"]) < 0.02
    # omnetpp: modest HALO speedup, HDS nothing.
    assert halo["omnetpp"] > 0.01
    assert abs(hds["omnetpp"]) < 0.02
    # Compute-bound: misses drop, time barely moves.
    for name in ("povray", "leela"):
        assert -0.02 < halo[name] < 0.06, f"{name} should be time-neutral"
    # HALO >= HDS on every benchmark (small tolerance for trial noise).
    for name in halo:
        assert halo[name] >= hds[name] - 0.04, f"HALO should not trail HDS on {name}"
    # HALO never significantly degrades anything.
    assert all(value > -0.03 for value in halo.values())
