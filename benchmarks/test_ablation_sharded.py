"""Extension benchmark: bump chunks vs free-list sharding (paper §6).

The paper's conclusion suggests "free list sharding [23] and meshing [28]
could be used in place of bump allocation to improve practical
fragmentation behaviour".  This bench runs the two worst Table-1 offenders
(leela and roms, whose grouped pools are almost entirely dead at peak)
under both pool designs and reports fragmentation and the locality cost.
"""

import os

from repro.allocators import ShardedGroupAllocator
from repro.cache import CacheHierarchy, CostModel
from repro.core import optimise_profile, profile_workload
from repro.core.pipeline import make_runtime
from repro.harness.reproduce import halo_params_for
from repro.harness.runner import PeakTracker
from repro.machine import Machine
from repro.workloads import get_workload

SCALE = os.environ.get("REPRO_BENCH_SCALE", "ref")
BENCHES = ("leela", "roms")


def measure_with(workload, artifacts, allocator_cls):
    from repro.allocators import AddressSpace

    runtime = make_runtime(artifacts, AddressSpace(1), allocator_cls=allocator_cls)
    memory = CacheHierarchy()
    tracker = PeakTracker(runtime.allocator)
    machine = Machine(
        workload.program,
        runtime.allocator,
        memory=memory,
        listeners=[tracker],
        instrumentation=runtime.instrumentation,
        state_vector=runtime.state_vector,
    )
    workload.run(machine, SCALE)
    snap = memory.snapshot()
    return {
        "cycles": CostModel().cycles(machine.metrics, snap),
        "l1": snap.l1_misses,
        "frag": tracker.frag_at_peak,
    }


def test_sharded_free_lists_vs_bump(benchmark):
    def run_all():
        results = {}
        for name in BENCHES:
            workload = get_workload(name)
            params = halo_params_for(workload)
            profile = profile_workload(workload, params, scale="test")
            artifacts = optimise_profile(profile, params)
            from repro.allocators import GroupAllocator

            results[name] = {
                "bump": measure_with(get_workload(name), artifacts, GroupAllocator),
                "sharded": measure_with(
                    get_workload(name), artifacts, ShardedGroupAllocator
                ),
            }
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\nBump chunks vs free-list sharding (§6 extension)")
    print(f"  {'benchmark':8s} {'design':8s} {'frag %':>8s} {'wasted KiB':>11s} {'L1 misses':>10s}")
    for name, designs in results.items():
        for design, r in designs.items():
            frag = r["frag"]
            print(
                f"  {name:8s} {design:8s} {frag.fraction * 100:7.2f}% "
                f"{frag.wasted_bytes / 1024:10.1f} {r['l1']:10,}"
            )

    for name, designs in results.items():
        bump, sharded = designs["bump"], designs["sharded"]
        # Sharding never wastes more grouped memory at peak...
        assert sharded["frag"].wasted_bytes <= bump["frag"].wasted_bytes
        # ... at a bounded locality cost.
        assert sharded["l1"] <= bump["l1"] * 1.25
