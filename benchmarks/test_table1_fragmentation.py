"""Regenerates paper Table 1: grouped-object fragmentation at peak memory.

The paper's table splits into two regimes:

* the prior-work benchmarks keep almost all grouped data live at peak —
  fragmentation fractions in the low single digits;
* povray (26 %), roms (93.6 %) and leela (99.99 %, 2.05 MiB) leave group
  chunks resident but largely dead, because their grouped objects are freed
  before the program's overall memory peak;
* despite the extreme percentages, the absolute wasted bytes stay modest —
  "the absolute number of bytes wasted in each case is actually relatively
  small".
"""

import os

from repro.harness import reproduce

SCALE = os.environ.get("REPRO_BENCH_SCALE", "ref")

LOW_FRAG = ("health", "equake", "analyzer", "ammp", "art", "ft")
HIGH_FRAG = ("roms", "leela")


def test_table1(benchmark):
    rows = benchmark.pedantic(
        lambda: reproduce.table1(scale=SCALE), rounds=1, iterations=1
    )
    print("\nTable 1 — fragmentation of grouped objects at peak memory usage")
    print(f"  {'Benchmark':10s} {'Frag. (%)':>10s} {'Frag. (bytes)':>14s}")
    for row in rows:
        print(
            f"  {row.benchmark:10s} {row.fraction * 100:9.2f}% "
            f"{row.wasted_bytes / 1024:11.2f}KiB"
        )

    by_name = {row.benchmark: row for row in rows}
    for name in LOW_FRAG:
        assert by_name[name].fraction < 0.05, f"{name} should have tiny fragmentation"
    assert 0.08 < by_name["povray"].fraction < 0.50
    for name in HIGH_FRAG:
        assert by_name[name].fraction > 0.80, f"{name} should be mostly dead space"
    # leela's chunks hold megabytes of dead space (paper: 2.05 MiB)...
    assert by_name["leela"].wasted_bytes > 1 << 20
    # ... but nothing wastes an unreasonable absolute amount.
    assert all(row.wasted_bytes < 8 << 20 for row in rows)
