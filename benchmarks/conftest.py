"""Shared state for the figure-regeneration benchmarks.

The full evaluation matrix (11 benchmarks x {baseline, HDS, HALO, random}
over repeated trials) is computed once per session and shared by the
Figure 13/14/15 benchmarks, mirroring the paper where one set of runs feeds
all three figures.

Environment knobs:

* ``REPRO_BENCH_SCALE``  — input scale for measured runs (default ``ref``);
* ``REPRO_BENCH_TRIALS`` — trials per configuration (default 1; the
  harness always runs and discards one extra warm-up trial).
"""

from __future__ import annotations

import os

import pytest

from repro.harness import reproduce

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "ref")
BENCH_TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "1"))


@pytest.fixture(scope="session")
def evaluations():
    """The shared evaluation matrix behind Figures 13, 14 and 15."""
    return reproduce.evaluate_all(
        trials=BENCH_TRIALS, scale=BENCH_SCALE, include_random=True
    )


def print_series(title: str, values: dict[str, float]) -> None:
    """Print one figure series as a labelled percentage row set."""
    print(f"\n{title}")
    for name, value in values.items():
        print(f"  {name:10s} {value * 100:+7.2f}%")
