"""Wall-clock baseline for the parallel evaluation engine.

Times one small-scale evaluation sweep three ways — serial, ``jobs=4``
cold, and ``jobs=4`` against a warm artifact cache — checks the three
produce identical results, and records the honest numbers in
``BENCH_eval_walltime.json`` at the repository root.

The parallel speedup scales with available cores: on a single-core
container the workers time-slice and the cold parallel run is *slower*
than serial (process + pickle overhead with no parallelism to pay for
it), which the recorded ``cpu_count`` makes interpretable.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_parallel_runner.py -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.artifact_cache import ArtifactCache
from repro.harness.parallel import evaluate_all_parallel
from repro.harness.prepare import PhaseTimes
from repro.harness.reproduce import evaluate_all

#: A sweep small enough to run in CI but with a real profile/analyse load.
SWEEP = ("deepsjeng", "roms", "povray", "ammp")
SCALE = os.environ.get("REPRO_BENCH_SCALE", "test")
TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "1"))
JOBS = 4

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_eval_walltime.json"


def _digest(evaluations) -> dict:
    return {
        name: {
            "baseline_cycles": e.baseline.cycles.median,
            "halo_cycles": e.halo.cycles.median,
            "halo_l1": e.halo.l1_misses.median,
            "hds_l1": e.hds.l1_misses.median,
        }
        for name, e in evaluations.items()
    }


def test_parallel_walltime_baseline(tmp_path):
    serial_times = PhaseTimes()
    start = time.perf_counter()
    serial = evaluate_all(
        benchmarks=SWEEP, trials=TRIALS, scale=SCALE, include_random=True,
        phase_times=serial_times,
    )
    serial_wall = time.perf_counter() - start

    cache = ArtifactCache(tmp_path / "cache")
    cold_times = PhaseTimes()
    start = time.perf_counter()
    cold = evaluate_all_parallel(
        SWEEP, trials=TRIALS, scale=SCALE, include_random=True,
        jobs=JOBS, cache=cache, phase_times=cold_times,
    )
    cold_wall = time.perf_counter() - start

    warm_times = PhaseTimes()
    start = time.perf_counter()
    warm = evaluate_all_parallel(
        SWEEP, trials=TRIALS, scale=SCALE, include_random=True,
        jobs=JOBS, cache=cache, phase_times=warm_times,
    )
    warm_wall = time.perf_counter() - start

    # Identical results in all three modes — the engine's core contract.
    assert _digest(serial) == _digest(cold) == _digest(warm)
    # The warm cache skipped every profile.
    assert warm_times.profile == 0.0
    assert warm_times.cache_misses == 0

    record = {
        "sweep": list(SWEEP),
        "scale": SCALE,
        "trials": TRIALS,
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "serial_wall_s": round(serial_wall, 2),
        "parallel_cold_wall_s": round(cold_wall, 2),
        "parallel_warm_wall_s": round(warm_wall, 2),
        "serial_phases": {
            "profile_s": round(serial_times.profile, 2),
            "analyse_s": round(serial_times.analyse, 2),
            "measure_s": round(serial_times.measure, 2),
        },
        "warm_cache": {"hits": warm_times.cache_hits, "profile_s": 0.0},
    }
    RESULTS_PATH.write_text(json.dumps(record, indent=1) + "\n")
    print(f"\nserial {serial_wall:.2f}s   jobs={JOBS} cold {cold_wall:.2f}s   "
          f"warm {warm_wall:.2f}s   (cpus={os.cpu_count()})")
    print(f"wrote {RESULTS_PATH}")
