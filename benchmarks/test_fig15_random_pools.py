"""Regenerates paper Figure 15: the random 4-pool allocator probe.

"The benchmarks with the largest change in behaviour in response to this
rather extreme allocation policy align well with the benchmarks for which
our technique proves most effective."  Checks that (a) the placement-
sensitive benchmarks slow down under random pooling, and (b) sensitivity
correlates with HALO's gains.
"""

from repro.harness import reproduce

from conftest import print_series

SENSITIVE = ("health", "ft", "analyzer", "ammp", "omnetpp")


def test_figure15(benchmark, evaluations):
    result = benchmark.pedantic(
        lambda: reproduce.figure15(evaluations), rounds=1, iterations=1
    )
    random_speedup = result.series[0].values
    print_series("Figure 15 — random 4-pool allocator speedup", random_speedup)

    # The placement-sensitive benchmarks are hurt by random pooling.
    for name in SENSITIVE:
        assert random_speedup[name] < -0.02, f"{name} should slow down"
    # Nothing is dramatically sped up by random placement.
    assert all(value < 0.08 for value in random_speedup.values())

    # Correlation with HALO effectiveness: the benchmarks HALO speeds up
    # most are, on average, more sensitive than the ones it cannot help.
    halo = {name: e.halo_speedup for name, e in evaluations.items()}
    helped = [name for name, value in halo.items() if value > 0.05]
    unhelped = [name for name, value in halo.items() if value <= 0.05]
    if helped and unhelped:
        mean = lambda names: sum(abs(random_speedup[n]) for n in names) / len(names)
        assert mean(helped) > 0.4 * mean(unhelped)
