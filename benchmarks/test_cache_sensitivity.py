"""Cache-pressure sensitivity: testing the paper's §5.2 conjecture.

For povray and leela the paper observes large L1D-miss reductions with flat
execution times and conjectures: "In more realistic environments with
greater external cache pressure, or on less sophisticated machines, the
observed speedups may be significantly larger."

The simulator can actually run that experiment.  "External cache pressure"
means co-running processes eating the *shared* L3 (and TLB reach), so the
pressured configuration keeps the core-private L1/L2 and shrinks the
effective L3 to a sliver of the Xeon's 25 MiB.  HALO's speedup on the
compute-bound benchmarks must grow under pressure.

(Shrinking L1/L2 as well does
*not* amplify the benefit in this simulator — once nothing fits anywhere,
both placements thrash equally — which is itself a useful calibration of
the conjecture's scope.)
"""

import os

from repro.cache import HierarchyConfig
from repro.core import optimise_profile, profile_workload
from repro.harness.reproduce import halo_params_for
from repro.harness.runner import measure_baseline, measure_halo
from repro.workloads import get_workload

SCALE = os.environ.get("REPRO_BENCH_SCALE", "ref")

XEON = HierarchyConfig.xeon_w2195()
PRESSURED = HierarchyConfig(
    l3_size=1536 * 1024,  # the slice of shared L3 left by noisy neighbours
    l3_assoc=8,
    tlb_entries=32,
)

BENCHES = ("povray", "leela", "health")


def speedup_under(workload_name, artifacts, config):
    workload = get_workload(workload_name)
    base = measure_baseline(workload, scale=SCALE, seed=1, hierarchy_config=config)
    halo = measure_halo(
        get_workload(workload_name), artifacts, scale=SCALE, seed=1, hierarchy_config=config
    )
    return base.cycles / halo.cycles - 1.0


def test_cache_pressure_amplifies_speedups(benchmark):
    def run_all():
        results = {}
        for name in BENCHES:
            workload = get_workload(name)
            params = halo_params_for(workload)
            profile = profile_workload(workload, params, scale="test")
            artifacts = optimise_profile(profile, params)
            results[name] = {
                "xeon": speedup_under(name, artifacts, XEON),
                "pressured": speedup_under(name, artifacts, PRESSURED),
            }
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\nHALO speedup: idle Xeon W-2195 vs the same part under L3 pressure")
    print(f"  {'benchmark':8s} {'idle':>8s} {'pressured':>10s}")
    for name, r in results.items():
        print(f"  {name:8s} {r['xeon'] * 100:+7.1f}% {r['pressured'] * 100:+9.1f}%")

    # The paper's conjecture: the compute-bound benchmarks' flat speedups
    # grow once the shared cache is contended.
    for name in ("povray", "leela"):
        assert results[name]["pressured"] > results[name]["xeon"], name
    # And a benchmark that was already memory-bound stays strongly positive.
    assert results["health"]["pressured"] > 0.10
