"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation disables one ingredient of the HALO pipeline and re-measures
a representative benchmark:

* **co-allocatability** (§4.1's fourth queue constraint) — without it the
  affinity graph admits relationships a shared pool cannot realise;
* **loop-aware score** (Figure 7) — degraded to plain weighted density;
* **node-coverage filter** (the 90 % noise cut) — widened to 100 %;
* **affinity distance** — the evaluation default (128) vs a tiny window.

The assertions are deliberately loose (single-seed runs): the full
configuration must remain competitive with every ablation, and the
pipeline must stay functional under each.
"""

import os

from repro.core import HaloParams, optimise_profile, profile_workload
from repro.core.grouping import GroupingParams
from repro.harness.runner import measure_baseline, measure_halo
from repro.profiling import AffinityParams
from repro.workloads import get_workload

SCALE = os.environ.get("REPRO_BENCH_SCALE", "ref")
BENCH = "health"

ABLATIONS = {
    "full HALO": HaloParams(),
    "no co-allocatability": HaloParams(
        affinity=AffinityParams(enforce_co_allocatability=False)
    ),
    "plain density score": HaloParams(
        grouping=GroupingParams(loop_aware_score=False)
    ),
    "no coverage filter": HaloParams(affinity=AffinityParams(node_coverage=1.0)),
    "affinity distance 16": HaloParams(affinity=AffinityParams(distance=16)),
}


def run_ablation(workload, params, base):
    profile = profile_workload(workload, params, scale="test")
    artifacts = optimise_profile(profile, params)
    measurement = measure_halo(workload, artifacts, scale=SCALE, seed=1)
    reduction = (
        base.cache.l1_misses - measurement.cache.l1_misses
    ) / base.cache.l1_misses
    return artifacts, measurement, reduction


def test_design_choice_ablations(benchmark):
    workload = get_workload(BENCH)
    base = measure_baseline(workload, scale=SCALE, seed=1)

    def run_all():
        results = {}
        for label, params in ABLATIONS.items():
            results[label] = run_ablation(get_workload(BENCH), params, base)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print(f"\nAblations on {BENCH} (baseline L1D misses {base.cache.l1_misses:,})")
    print(f"  {'configuration':24s} {'groups':>6s} {'bits':>5s} {'L1 reduction':>13s}")
    for label, (artifacts, _, reduction) in results.items():
        print(
            f"  {label:24s} {len(artifacts.groups):6d} "
            f"{artifacts.plan.bits_used:5d} {reduction * 100:+12.1f}%"
        )

    full = results["full HALO"][2]
    # The full configuration is meaningfully positive...
    assert full > 0.10
    # ... and at least matches every ablated variant (small tolerance).
    for label, (_, _, reduction) in results.items():
        assert full >= reduction - 0.05, f"ablation {label!r} should not beat full HALO"
    # A tiny affinity window cripples relationship discovery.
    assert results["affinity distance 16"][2] <= full
