"""Wall-clock baseline for the columnar measurement core.

Times the trace-driven measure phase of the four-benchmark acceptance
sweep (deepsjeng / roms / povray / ammp, baseline config) two ways —
per-event :class:`~repro.machine.machine.Machine` replay and the
batched :func:`~repro.columnar.measure_columnar` backend — asserts the
two produce bit-identical measurements, and records the honest numbers
in ``BENCH_columnar.json`` at the repository root.  CI's bench job gates
throughput against that file via ``tools/check_regression.py``.

Both engines run warm: traces are recorded and decoded up front, and
each engine gets one unmeasured warm-up pass (the first columnar call
compiles and caches the LRU kernel).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_columnar.py -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.columnar import kernel_backend
from repro.harness.prepare import get_or_record_trace
from repro.harness.runner import measure_baseline
from repro.workloads.base import get_workload

WORKLOADS = tuple(
    os.environ.get("REPRO_BENCH_COLUMNAR_WORKLOADS", "deepsjeng,roms,povray,ammp").split(",")
)
SCALE = os.environ.get("REPRO_BENCH_SCALE", "test")
REPEATS = int(os.environ.get("REPRO_BENCH_COLUMNAR_REPEATS", "3"))
#: The acceptance bar — only enforced with the compiled kernel; the
#: pure-Python fallback stays correct but is not held to the same floor.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_COLUMNAR_MIN_SPEEDUP", "10.0"))

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_columnar.json"


def _fields(m):
    return (
        m.workload, m.config, m.scale, m.seed, m.cycles, m.cache,
        m.accesses, m.allocs, m.frees, m.instrumentation_toggles,
        m.peak_live_bytes, m.frag_at_peak,
        m.grouped_allocs, m.forwarded_allocs, m.degraded_allocs,
    )


def _measure_sweep(inputs, engine):
    out = []
    for workload, trace in inputs:
        out.append(
            measure_baseline(workload, scale=SCALE, seed=1, trace=trace, engine=engine)
        )
    return out


def test_columnar_measure_walltime():
    inputs = []
    total_events = 0
    for name in WORKLOADS:
        workload = get_workload(name)
        trace = get_or_record_trace(name, workload=workload, scale=SCALE)
        trace.columns()  # decode outside the timed region for both engines
        inputs.append((workload, trace))
        total_events += trace.header.events

    # One unmeasured warm-up per engine (kernel compile, allocator caches).
    event_results = _measure_sweep(inputs, "event")
    columnar_results = _measure_sweep(inputs, "columnar")

    # The differential oracle, on the exact sweep being timed.
    assert [_fields(m) for m in columnar_results] == [_fields(m) for m in event_results]

    event_wall = min(
        _timed(_measure_sweep, inputs, "event") for _ in range(REPEATS)
    )
    columnar_wall = min(
        _timed(_measure_sweep, inputs, "columnar") for _ in range(REPEATS)
    )

    speedup = event_wall / columnar_wall
    backend = kernel_backend()
    if backend == "c":
        assert speedup >= MIN_SPEEDUP, (
            f"columnar only {speedup:.2f}x faster than per-event replay "
            f"(floor {MIN_SPEEDUP:g}x)"
        )
    else:
        # Fallback environments keep the agreement guarantee; speed is
        # only reported, not gated.
        assert speedup > 1.0, f"python-kernel columnar slower than event ({speedup:.2f}x)"

    record = {
        "workloads": list(WORKLOADS),
        "scale": SCALE,
        "config": "baseline",
        "kernel_backend": backend,
        "trace_events": total_events,
        "event_measure_wall_s": round(event_wall, 3),
        "columnar_measure_wall_s": round(columnar_wall, 3),
        "speedup": round(speedup, 2),
        "columnar_events_per_s": round(total_events / columnar_wall),
    }
    RESULTS_PATH.write_text(json.dumps(record, indent=1) + "\n")
    print(f"\n{len(WORKLOADS)} workloads, {total_events:,} events   "
          f"event {event_wall:.3f}s   columnar {columnar_wall:.3f}s   "
          f"({speedup:.1f}x, {backend} kernel)")
    print(f"wrote {RESULTS_PATH}")


def _timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start
