#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from a results JSON.

Usage:
    python tools/gen_results.py results.json   # produce the measurements
    python tools/render_experiments.py results.json > EXPERIMENTS.md

Paper values below are read off the published figures (the paper prints few
exact numbers); they are approximate by nature.
"""

import json
import sys

# Approximate values read from the paper's Figures 13-15 and Table 1.
PAPER = {
    "fig13_halo": {"health": 23, "ft": 10, "analyzer": 15, "ammp": 8, "art": 18,
                   "equake": 6, "povray": 13, "omnetpp": 10, "xalanc": 14,
                   "leela": 7, "roms": 1},
    "fig13_hds": {"health": 17, "ft": 9, "analyzer": 13, "ammp": 6, "art": 16,
                  "equake": 5, "povray": 2, "omnetpp": 0, "xalanc": 1,
                  "leela": 2, "roms": -5},
    "fig14_halo": {"health": 28, "ft": 12, "analyzer": 10, "ammp": 8, "art": 15,
                   "equake": 5, "povray": 2, "omnetpp": 4, "xalanc": 16,
                   "leela": 1, "roms": 0},
    "fig14_hds": {"health": 21, "ft": 11, "analyzer": 9, "ammp": 6, "art": 13,
                  "equake": 4, "povray": 0, "omnetpp": 0, "xalanc": 0,
                  "leela": 0, "roms": -2},
    "fig15": {"health": -45, "ft": -40, "analyzer": -25, "ammp": -15, "art": -20,
              "equake": -10, "povray": -2, "omnetpp": -20, "xalanc": -5,
              "leela": -2, "roms": -5},
    "table1": {"health": [0.01, 31.98], "equake": [0.05, 12.08],
               "analyzer": [0.13, 4.31], "ammp": [0.20, 40.97],
               "art": [0.62, 11.70], "ft": [2.06, 4.05],
               "povray": [26.47, 37.06], "roms": [93.60, 29.95],
               "leela": [99.99, 2099.2]},
}

ORDER = ["health", "ft", "analyzer", "ammp", "art", "equake",
         "povray", "omnetpp", "xalanc", "leela", "roms"]


def fig_table(measured, paper, unit="%"):
    lines = ["| benchmark | paper (approx.) | measured |", "|---|---|---|"]
    for name in ORDER:
        if name not in measured:
            continue
        lines.append(f"| {name} | {paper.get(name, '–')}{unit} | {measured[name]:+.1f}{unit} |")
    return "\n".join(lines)


def main() -> None:
    with open(sys.argv[1]) as handle:
        r = json.load(handle)

    fig12_rows = "\n".join(
        f"| {k} | {v * 100:+.2f}% |" for k, v in r["fig12"].items()
    )
    t1_rows = "\n".join(
        f"| {name} | {PAPER['table1'][name][0]:.2f}% / {PAPER['table1'][name][1]:.2f} KiB "
        f"| {r['table1'][name][0]:.2f}% / {r['table1'][name][1]:.2f} KiB |"
        for name in ("health", "equake", "analyzer", "ammp", "art", "ft",
                     "povray", "roms", "leela")
        if name in r["table1"]
    )
    blow_nodes, blow_streams = r["roms_blowup"]

    print(TEMPLATE.format(
        fig13_halo=fig_table(r["fig13_halo"], PAPER["fig13_halo"]),
        fig13_hds=fig_table(r["fig13_hds"], PAPER["fig13_hds"]),
        fig14_halo=fig_table(r["fig14_halo"], PAPER["fig14_halo"]),
        fig14_hds=fig_table(r["fig14_hds"], PAPER["fig14_hds"]),
        fig15=fig_table(r["fig15"], PAPER["fig15"]),
        fig12_rows=fig12_rows,
        t1_rows=t1_rows,
        blow_nodes=blow_nodes,
        blow_streams=blow_streams,
    ))


TEMPLATE = """\
# EXPERIMENTS — paper vs. measured

Every table and figure in the paper's evaluation (Section 5), reproduced by
this repository's simulation.  Measured values below come from
`tools/gen_results.py` (ref-scale inputs, 2 trials with placement jitter,
medians); regenerate any row with the named benchmark target or the `halo
plot` CLI.

**Reading guide.**  The paper reports hardware wall-clock and `perf`
counters on SPEC binaries; this reproduction reports simulated cycles and
simulated cache counters on synthetic stand-ins.  Absolute agreement is not
the goal (and would be meaningless); the reproduction targets are the
paper's *shape claims*, listed per artefact below with an explicit verdict.
Paper numbers are approximate read-offs from the published figures.

## Figure 13 — L1D cache-miss reduction (`benchmarks/test_fig13_miss_reduction.py`)

HALO:

{fig13_halo}

Chilimbi et al. (hot data streams):

{fig13_hds}

Shape claims, paper → this reproduction:

* **HALO reduces misses on all six prior-work benchmarks and on the
  complex CPU2017 ones** → reproduced (all positive, health strongest).
* **HDS matches HALO only on the prior-work programs** → reproduced.
* **HDS achieves nothing on wrapper/`operator new` programs (povray,
  omnetpp, xalanc, leela)** → reproduced exactly: the replication forms
  *no* co-allocation groups on these, because every hot stream maps to the
  single `malloc` call site inside the wrapper (`repro/hds/coalloc.py`).
* **HDS increases misses on roms** → reproduced, via the paper's stated
  mechanism (truncated co-allocation sets splitting the naturally
  co-located boundary triple; see `repro/workloads/roms.py`).

Known deltas: our HDS bars on the prior-work benchmarks run 1-3 points
closer to HALO than the paper's; xalanc's and leela's HALO miss reductions
overshoot (~27 % vs ~14 %, ~20 % vs ~7 %) while their *speedups* match the
paper — the synthetic versions' savings are more L1-weighted than the
originals'.

## Figure 14 — speedup (`benchmarks/test_fig14_speedup.py`)

HALO:

{fig14_halo}

Chilimbi et al. (hot data streams):

{fig14_hds}

Shape claims:

* **health is the headline (~28 %)** → reproduced (largest bar, ~31 %).
* **xalanc double-digit with HDS at zero** → reproduced (~19 %, HDS 0).
* **omnetpp ~4 %, HDS nothing** → reproduced.
* **povray and leela: misses drop, time "largely unchanged"
  (compute-bound)** → reproduced (≤3 % and ≤2 % respectively, against
  double-digit miss reductions).
* **HALO never significantly degrades a benchmark** → reproduced (minimum
  HALO speedup ≈ 0 on roms).
* **HALO ≥ HDS everywhere** → reproduced.

## Figure 15 — random 4-pool allocator (`benchmarks/test_fig15_random_pools.py`)

{fig15}

Shape claims:

* **placement-sensitive benchmarks slow down under random pooling** →
  reproduced (health/ft/analyzer/ammp/omnetpp all clearly negative).
* **sensitivity aligns with where HALO helps** → reproduced in direction;
  equake and xalanc are the outliers (random pooling lands mildly
  *positive* at the median for them — their synthetic locality comes from
  same-class pollution rather than allocation-order adjacency, which
  random pooling incidentally dilutes).
* Known delta: magnitudes are milder than the paper's (our worst is ~-24 %
  on omnetpp vs the paper's ~-55 % on health); the simulated baseline
  retains more incidental locality under random pooling than real
  jemalloc heaps do.

## Figure 12 — omnetpp vs affinity distance (`benchmarks/test_fig12_affinity_sweep.py`)

Relative simulated time vs the unmodified baseline (negative = faster):

| A (bytes) | vs baseline |
|---|---|
{fig12_rows}

Shape claims: the evaluation's chosen A = 128 sits in the sweet spot, and
larger distances (here from A = 512) lose most of the benefit — the window
starts admitting unrelated contexts into the groups — matching the paper's
right-hand degradation.
Known delta: the paper's plot also degrades at the far-left (A = 8-16);
our synthetic omnetpp still finds the event/message pair at tiny windows
because their accesses are genuinely byte-adjacent, so the left side stays
flat at the optimum.  The sweep stops at 2^13 (profiling cost grows with
the window; the curve has flattened by 2^11).

## Table 1 — fragmentation of grouped objects at peak memory usage (`benchmarks/test_table1_fragmentation.py`)

| benchmark | paper (frag % / wasted) | measured (frag % / wasted) |
|---|---|---|
{t1_rows}

Shape claims:

* **two regimes** — prior-work benchmarks keep grouped data live at peak
  (sub-1 % fragmentation); povray is intermediate; roms and leela strand
  nearly their whole pools → reproduced, including leela's
  99.99 %-with-~2 MiB-wasted signature (the per-game UCT tree dies before
  the scoring-phase peak).
* **absolute waste stays small** → reproduced (nothing beyond a few MiB).

## §5.2 — "essentially no effect" control

The paper excludes the CPU2017 benchmarks that neither technique affects.
`repro/workloads/deepsjeng.py` provides one such control (large hash
tables dominate; small-object placement is moot);
`tests/test_control_workload.py` asserts HALO changes its time by <2 % in
either direction and that the random 4-pool allocator leaves it unfazed —
the paper's non-degradation claim.

## §5.2 — representation blow-up on roms

Paper: "HALO's affinity graph can represent over 90 % of all salient
accesses in this program using only 31 nodes, the hot-data-stream-based
approach requires over 150,000 streams."

Measured (test input): **{blow_nodes} affinity-graph nodes vs
{blow_streams} hot data streams** — three orders of magnitude smaller than
the paper's trace, same two-orders-of-magnitude representational gap.

## Extensions (beyond the paper)

* `benchmarks/test_ablations.py` — disabling co-allocatability, the
  loop-aware score, or the 90 % coverage filter never beats the full
  configuration on health; a 16-byte affinity distance still finds the
  dominant pair there (its accesses are adjacent), matching the Figure 12
  discussion.
* `benchmarks/test_ablation_sharded.py` — §6's free-list sharding bounds
  leela's dead grouped space (≈2.9 MiB → ≈1.0 MiB at peak) at no L1 cost;
  roms is unchanged because its pool dies all at once, which sharding
  cannot help.
* `benchmarks/test_related_calder.py` — the §2.2.3 related-work scheme
  (Calder et al.'s XOR-of-last-4-return-addresses naming) replicated as a
  third technique: it matches HALO on health (+~23 % L1 both) and forms no
  useful groups on xalanc (all names collide below the deep allocator
  plumbing), reproducing the paper's "fixed-sized contexts" critique.
* `benchmarks/test_cache_sensitivity.py` — §5.2's conjecture holds when
  "external cache pressure" is modelled as shared-L3 contention (povray's
  speedup grows ~3 % → ~5 %, leela's ~0.5 % → ~2 % with the L3 squeezed to
  1.5 MiB), but *not* when the private L1/L2 shrink too — once nothing
  fits anywhere, both placements thrash alike.  The trace-replay tool
  behind this sweep is `repro.harness.AccessTrace`
  (`examples/cache_geometry_sweep.py`).

## Reproducing

```bash
pytest benchmarks/ --benchmark-only          # everything (~20 min)
halo plot --figure 13 --out out/             # one figure + JSON data
python tools/gen_results.py out/results.json # the numbers behind this file
python tools/render_experiments.py out/results.json > EXPERIMENTS.md
```
"""


if __name__ == "__main__":
    main()
