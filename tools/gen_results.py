#!/usr/bin/env python3
"""Run the full evaluation matrix and write the results JSON.

Usage: python tools/gen_results.py out/results.json [--trials N] [--jobs N]
           [--cache-dir DIR | --no-cache]

This is the data source for tools/render_experiments.py (and EXPERIMENTS.md).
``--jobs`` fans the (benchmark, config, seed) matrix over worker processes;
``--cache-dir`` (default ``.halo-cache``) persists profiling artifacts so a
re-run skips the profile/analyse phases.  A per-phase wall-time report is
printed at the end either way.
"""

import argparse
import json
import time
from pathlib import Path

from repro.core.artifact_cache import ArtifactCache
from repro.harness import reproduce
from repro.harness.prepare import PhaseTimes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", type=Path)
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--scale", default="ref")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the evaluation matrix")
    parser.add_argument("--cache-dir", type=Path, default=Path(".halo-cache"),
                        metavar="DIR", help="artifact cache directory")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the artifact cache")
    args = parser.parse_args()

    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    times = PhaseTimes()
    started = time.perf_counter()

    out = {}
    evals = reproduce.evaluate_all(
        trials=args.trials, scale=args.scale, include_random=True,
        jobs=args.jobs, cache=cache, phase_times=times,
    )
    out["fig13_hds"] = {n: round(e.hds_miss_reduction * 100, 1) for n, e in evals.items()}
    out["fig13_halo"] = {n: round(e.halo_miss_reduction * 100, 1) for n, e in evals.items()}
    out["fig14_hds"] = {n: round(e.hds_speedup * 100, 1) for n, e in evals.items()}
    out["fig14_halo"] = {n: round(e.halo_speedup * 100, 1) for n, e in evals.items()}
    out["fig15"] = {n: round(e.random_speedup * 100, 1) for n, e in evals.items()}
    out["meta"] = {
        n: dict(groups=e.halo_groups, hds_groups=e.hds_groups,
                streams=e.hds_streams, nodes=e.graph_nodes)
        for n, e in evals.items()
    }
    rows = reproduce.table1(scale=args.scale, jobs=args.jobs, cache=cache, phase_times=times)
    out["table1"] = {
        r.benchmark: [round(r.fraction * 100, 2), round(r.wasted_bytes / 1024, 2)]
        for r in rows
    }
    blow = reproduce.roms_representation_blowup(cache=cache)
    out["roms_blowup"] = [blow.affinity_graph_nodes, blow.hot_streams]
    fig12 = reproduce.figure12(
        distances=(8, 32, 128, 512, 2048, 8192), trials=args.trials,
        scale=args.scale, cache=cache, phase_times=times,
    )
    out["fig12_baseline"] = fig12.notes["baseline"]
    out["fig12"] = {
        k: round(v / fig12.notes["baseline"] - 1.0, 4)
        for k, v in fig12.series[0].values.items()
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(out, indent=1))
    print(f"wrote {args.output}")
    print(times.report(wall=time.perf_counter() - started))


if __name__ == "__main__":
    main()
