#!/usr/bin/env python3
"""Run the full evaluation matrix and write the results JSON.

Usage: python tools/gen_results.py out/results.json [--trials N]

This is the data source for tools/render_experiments.py (and EXPERIMENTS.md).
"""

import argparse
import json
from pathlib import Path

from repro.harness import reproduce


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", type=Path)
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--scale", default="ref")
    args = parser.parse_args()

    out = {}
    evals = reproduce.evaluate_all(trials=args.trials, scale=args.scale, include_random=True)
    out["fig13_hds"] = {n: round(e.hds_miss_reduction * 100, 1) for n, e in evals.items()}
    out["fig13_halo"] = {n: round(e.halo_miss_reduction * 100, 1) for n, e in evals.items()}
    out["fig14_hds"] = {n: round(e.hds_speedup * 100, 1) for n, e in evals.items()}
    out["fig14_halo"] = {n: round(e.halo_speedup * 100, 1) for n, e in evals.items()}
    out["fig15"] = {n: round(e.random_speedup * 100, 1) for n, e in evals.items()}
    out["meta"] = {
        n: dict(groups=e.halo_groups, hds_groups=e.hds_groups,
                streams=e.hds_streams, nodes=e.graph_nodes)
        for n, e in evals.items()
    }
    rows = reproduce.table1(scale=args.scale)
    out["table1"] = {
        r.benchmark: [round(r.fraction * 100, 2), round(r.wasted_bytes / 1024, 2)]
        for r in rows
    }
    blow = reproduce.roms_representation_blowup()
    out["roms_blowup"] = [blow.affinity_graph_nodes, blow.hot_streams]
    fig12 = reproduce.figure12(distances=(8, 32, 128, 512, 2048, 8192), trials=args.trials, scale=args.scale)
    out["fig12_baseline"] = fig12.notes["baseline"]
    out["fig12"] = {
        k: round(v / fig12.notes["baseline"] - 1.0, 4)
        for k, v in fig12.series[0].values.items()
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(out, indent=1))
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
