#!/usr/bin/env python3
"""Gate a metrics snapshot against a committed benchmark baseline.

Usage: PYTHONPATH=src python tools/check_regression.py \
           --snapshot out/metrics.json \
           --baseline BENCH_eval_walltime.json [--tolerance 0.5]

The snapshot is one written by ``--metrics-out`` (``halo plot`` /
``halo trace sweep``); the baseline is one of the committed
``BENCH_*.json`` files, whose schema selects the comparison
(phase wall-time upper bounds for the evaluation baseline, replay/record
throughput lower bounds for the trace baseline).  Exits non-zero when any
check regresses past the tolerance, which is what makes it usable as a CI
gate.  Equivalent to ``halo obs check``; this standalone form keeps CI
pipelines independent of the installed entry point.
"""

import argparse
import sys
from pathlib import Path

# Allow running without PYTHONPATH when invoked from the repo root.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import run_gate, snapshot_from_json  # noqa: E402


def main() -> int:
    """Parse arguments, run the gate, print the report, return exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--snapshot", type=Path, required=True, metavar="SNAP.json",
        help="metrics snapshot written by --metrics-out",
    )
    parser.add_argument(
        "--baseline", type=Path, required=True, metavar="BENCH.json",
        help="committed baseline to compare against",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.5, metavar="F",
        help="allowed fractional regression before failing (default: 0.5)",
    )
    args = parser.parse_args()

    try:
        snapshot = snapshot_from_json(args.snapshot.read_text())
    except FileNotFoundError:
        print(f"error: {args.snapshot} does not exist", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {args.snapshot}: {exc}", file=sys.stderr)
        return 2
    try:
        passed, report = run_gate(snapshot, args.baseline, tolerance=args.tolerance)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report)
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
