#!/usr/bin/env python3
"""Quickstart: run the full HALO pipeline on one benchmark.

Profiles the ``health`` benchmark on its small test input, builds the
allocation groups and selectors, rewrites the (simulated) binary, and then
measures baseline vs HALO on the large ref input — the exact offline/online
split of the paper's Figure 4.

Run:  python examples/quickstart.py [benchmark]
"""

import sys

from repro import (
    HaloParams,
    get_workload,
    measure_baseline,
    measure_halo,
    optimise_profile,
    profile_workload,
)
from repro.analysis import format_table
from repro.harness.reproduce import halo_params_for


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "health"
    workload = get_workload(name)
    params = halo_params_for(workload)

    # 1. Profile on the small test input (Pin-tool stand-in).
    print(f"profiling {name} (test input)...")
    profile = profile_workload(workload, params, scale="test")
    print(
        f"  {len(profile.contexts)} allocation contexts, "
        f"{len(profile.graph)} affinity-graph nodes after the 90% filter"
    )

    # 2. Offline analysis: grouping, identification, rewriting plan.
    artifacts = optimise_profile(profile, params)
    print(f"\nallocation groups ({len(artifacts.groups)}):")
    for line in artifacts.describe_groups():
        print("  " + line)
    print(f"\ninstrumented call sites ({artifacts.plan.bits_used}):")
    for line in artifacts.plan.describe(workload.program):
        print("  " + line)

    # 3. Measure baseline vs HALO on the ref input.
    print(f"\nmeasuring {name} (ref input)...")
    base = measure_baseline(workload, scale="ref", seed=1)
    halo = measure_halo(workload, artifacts, scale="ref", seed=1)

    reduction = (base.cache.l1_misses - halo.cache.l1_misses) / base.cache.l1_misses
    speedup = base.cycles / halo.cycles - 1.0
    print(
        format_table(
            ["metric", "baseline (jemalloc-like)", "HALO"],
            [
                ["cycles", f"{base.cycles:,.0f}", f"{halo.cycles:,.0f}"],
                ["L1D misses", f"{base.cache.l1_misses:,}", f"{halo.cache.l1_misses:,}"],
                ["L2 misses", f"{base.cache.l2_misses:,}", f"{halo.cache.l2_misses:,}"],
                ["DTLB misses", f"{base.cache.tlb_misses:,}", f"{halo.cache.tlb_misses:,}"],
                ["grouped allocs", "-", f"{halo.grouped_allocs:,}"],
            ],
        )
    )
    print(f"\nL1D miss reduction: {reduction * 100:+.1f}%   speedup: {speedup * 100:+.1f}%")


if __name__ == "__main__":
    main()
