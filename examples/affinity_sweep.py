#!/usr/bin/env python3
"""A condensed Figure 12: omnetpp execution time vs affinity distance.

Sweeps the affinity distance A over a handful of powers of two (the full
paper range 2^3..2^17 is available via --full, at a profiling cost that
grows with the window) and prints the simulated-cycle curve against the
baseline, like the paper's dashed line.

Run:  python examples/affinity_sweep.py [--full] [--trials N]
"""

import argparse

from repro.analysis import bar_chart
from repro.harness.reproduce import figure12


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="sweep 2^3..2^17 (slow)")
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--scale", default="ref")
    args = parser.parse_args()

    distances = (
        tuple(2**k for k in range(3, 18))
        if args.full
        else (8, 32, 128, 512, 2048, 8192)
    )
    result = figure12(distances=distances, trials=args.trials, scale=args.scale)
    baseline = result.notes["baseline"]
    relative = {
        f"A={key}": value / baseline - 1.0
        for key, value in result.series[0].values.items()
    }
    print(
        bar_chart(
            relative,
            title="omnetpp simulated time vs affinity distance (relative to baseline)",
            baseline=baseline,
        )
    )
    best = min(relative, key=relative.get)
    print(f"\nbest distance: {best} ({relative[best] * 100:+.1f}% vs baseline)")
    print("the paper selects A=128: 'reasonable performance gains at a")
    print("relatively low profiling overhead' (Section 5.1)")


if __name__ == "__main__":
    main()
