#!/usr/bin/env python3
"""Ablation: HALO's grouping vs modularity, HCS, and cut-based clustering.

Section 4.2 claims the greedy merge-benefit algorithm produces clusters
"more amenable to region-based co-allocation than standard modularity, HCS,
or cut-based clustering techniques".  This example clusters a real profile
(health) with all four algorithms and measures what happens when each
clustering drives the specialised allocator.

Run:  python examples/compare_clusterers.py [benchmark]
"""

import sys

from repro import (
    AddressSpace,
    CacheHierarchy,
    CostModel,
    HaloParams,
    Machine,
    get_workload,
    measure_baseline,
    profile_workload,
)
from repro.clustering import cut_groups, hcs_groups, modularity_groups
from repro.core import assign_groups, group_contexts, synthesise_selectors
from repro.core.pipeline import HaloArtifacts, make_runtime, optimise_profile
from repro.core.selectors import monitored_sites
from repro.core.score import score
from repro.rewriting import BoltRewriter


def artifacts_for(profile, groups, params) -> HaloArtifacts:
    """Package an arbitrary clustering as HALO artifacts."""
    context_group = {cid: None for cid in profile.context_stats}
    context_group.update(assign_groups(groups))
    rewriter = BoltRewriter(profile.program)
    ident = synthesise_selectors(
        groups, profile.contexts, context_group, rewriter.can_instrument
    )
    plan = rewriter.instrument(monitored_sites(ident.selectors))
    return HaloArtifacts(
        program=profile.program,
        profile=profile,
        groups=list(groups),
        identification=ident,
        plan=plan,
        params=params,
    )


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "health"
    workload = get_workload(name)
    params = HaloParams()
    profile = profile_workload(workload, params, scale="test")
    base = measure_baseline(workload, scale="ref", seed=1)

    clusterings = {
        "HALO (Figure 6)": group_contexts(profile.graph, params.grouping),
        "modularity": modularity_groups(profile.graph),
        "HCS": hcs_groups(profile.graph),
        "cut-based": cut_groups(profile.graph),
    }

    print(f"{name}: baseline L1D misses {base.cache.l1_misses:,}\n")
    print(f"{'clustering':18s} {'groups':>6s} {'mean score':>11s} {'L1 reduction':>13s} {'speedup':>8s}")
    for label, groups in clusterings.items():
        if groups:
            mean_score = sum(score(profile.graph, g.members) for g in groups) / len(groups)
        else:
            mean_score = 0.0
        artifacts = artifacts_for(profile, groups, params)
        runtime = make_runtime(artifacts, AddressSpace(1))
        memory = CacheHierarchy()
        machine = Machine(
            workload.program,
            runtime.allocator,
            memory=memory,
            instrumentation=runtime.instrumentation,
            state_vector=runtime.state_vector,
        )
        workload.run(machine, "ref")
        snap = memory.snapshot()
        cycles = CostModel().cycles(machine.metrics, snap)
        reduction = (base.cache.l1_misses - snap.l1_misses) / base.cache.l1_misses
        speedup = base.cycles / cycles - 1.0
        print(
            f"{label:18s} {len(groups):6d} {mean_score:11.1f} "
            f"{reduction * 100:+12.1f}% {speedup * 100:+7.1f}%"
        )


if __name__ == "__main__":
    main()
