#!/usr/bin/env python3
"""What-if analysis: one captured trace, many cache geometries.

Captures the address trace of a benchmark once under both placements
(baseline and HALO) and replays the pair through a ladder of memory
hierarchies — from an embedded-class part up to the paper's Xeon W-2195 —
to test §5.2's conjecture that HALO's flat speedups on compute-bound
programs grow under cache pressure.

Run:  python examples/cache_geometry_sweep.py [benchmark]
"""

import sys

from repro import (
    AddressSpace,
    CostModel,
    HaloParams,
    HierarchyConfig,
    Machine,
    SizeClassAllocator,
    get_workload,
    make_runtime,
    optimise_profile,
    profile_workload,
)
from repro.harness import AccessTraceRecorder
from repro.harness.reproduce import halo_params_for

GEOMETRIES = {
    "embedded (8K/128K/2M)": HierarchyConfig(
        l1_size=8 * 1024, l1_assoc=4, l2_size=128 * 1024, l2_assoc=8,
        l3_size=2048 * 1024, l3_assoc=8, tlb_entries=32,
    ),
    "laptop (32K/256K/8M)": HierarchyConfig(
        l2_size=256 * 1024, l2_assoc=8, l3_size=8192 * 1024, l3_assoc=16,
    ),
    "Xeon, L3 contended": HierarchyConfig(
        l3_size=1536 * 1024, l3_assoc=8, tlb_entries=32,
    ),
    "Xeon W-2195 (paper)": HierarchyConfig.xeon_w2195(),
}


def capture(workload, make_machine, scale="ref"):
    recorder = AccessTraceRecorder()

    machine = make_machine(recorder)
    workload.run(machine, scale)
    return recorder.trace(), machine.metrics


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "povray"
    workload = get_workload(name)
    params = halo_params_for(workload)
    profile = profile_workload(workload, params, scale="test")
    artifacts = optimise_profile(profile, params)

    base_trace, base_metrics = capture(
        get_workload(name),
        lambda rec: Machine(
            workload.program, SizeClassAllocator(AddressSpace(1)), listeners=[rec]
        ),
    )

    def halo_machine(rec):
        runtime = make_runtime(artifacts, AddressSpace(1))
        return Machine(
            workload.program,
            runtime.allocator,
            listeners=[rec],
            instrumentation=runtime.instrumentation,
            state_vector=runtime.state_vector,
        )

    halo_trace, halo_metrics = capture(get_workload(name), halo_machine)

    model = CostModel()
    print(f"{name}: HALO speedup across memory hierarchies "
          f"(one trace per placement, replayed)\n")
    print(f"{'geometry':24s} {'base L1 misses':>15s} {'HALO L1 misses':>15s} {'speedup':>9s}")
    for label, config in GEOMETRIES.items():
        base_stats = base_trace.replay(config)
        halo_stats = halo_trace.replay(config)
        base_cycles = model.cycles(base_metrics, base_stats)
        halo_cycles = model.cycles(halo_metrics, halo_stats)
        speedup = base_cycles / halo_cycles - 1.0
        print(
            f"{label:24s} {base_stats.l1_misses:15,} {halo_stats.l1_misses:15,} "
            f"{speedup * 100:+8.1f}%"
        )


if __name__ == "__main__":
    main()
