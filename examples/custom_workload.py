#!/usr/bin/env python3
"""Optimising your own program with the library's public API.

Builds a small binary-tree workload from scratch — static program model,
workload body — and runs it through profiling, grouping, identification,
rewriting and the specialised allocator.  This is the template for applying
the reproduction to new allocation/access patterns.

Run:  python examples/custom_workload.py
"""

import random

from repro import (
    AddressSpace,
    CacheHierarchy,
    HaloParams,
    Machine,
    ProgramBuilder,
    SizeClassAllocator,
    make_runtime,
    optimise_profile,
    profile_workload,
)


class TreeWorkload:
    """A binary tree whose internal nodes are hot and string labels cold.

    Nodes and labels are allocated together (the classic interleaving that
    scatters related data under a size-segregated allocator); searches then
    chase internal nodes only.
    """

    name = "custom-tree"

    def __init__(self, nodes=4000, searches=30000):
        self.nodes = nodes
        self.searches = searches
        b = ProgramBuilder("custom-tree")
        b.function("malloc", in_main_binary=False)
        self.s_build = b.call_site("main", "tree_insert")
        self.s_node = b.call_site("tree_insert", "new_node")
        self.s_node_malloc = b.call_site("new_node", "malloc", label="tree node")
        self.s_label = b.call_site("tree_insert", "new_label")
        self.s_label_malloc = b.call_site("new_label", "malloc", label="label")
        self.program = b.build()

    def run(self, machine: Machine, scale: str = "ref") -> None:
        factor = {"test": 0.25, "train": 0.5, "ref": 1.0}[scale]
        rng = random.Random(f"{self.name}:{scale}")
        count = max(16, int(self.nodes * factor))

        # Build: node + label allocated per insertion.
        tree = []  # level-order nodes
        for _ in range(count):
            with machine.call(self.s_build):
                with machine.call(self.s_node):
                    with machine.call(self.s_node_malloc):
                        node = machine.malloc(48)
                machine.store(node, 0, 8)
                with machine.call(self.s_label):
                    with machine.call(self.s_label_malloc):
                        label = machine.malloc(48)
                machine.store(label, 0, 8)
            tree.append(node)

        # Search: random root-to-leaf walks touch nodes only.
        for _ in range(max(16, int(self.searches * factor))):
            index = 0
            while index < len(tree):
                machine.load(tree[index], 0, 8)
                machine.load(tree[index], 16, 8)
                index = 2 * index + 1 + rng.randrange(2)
            machine.work(4.0)
        machine.finish()


def measure(workload, make_machine) -> tuple[float, int]:
    memory = CacheHierarchy()
    machine = make_machine(memory)
    workload.run(machine, "ref")
    from repro import CostModel

    snap = memory.snapshot()
    return CostModel().cycles(machine.metrics, snap), snap.l1_misses


def main() -> None:
    workload = TreeWorkload()

    profile = profile_workload(workload, HaloParams(), scale="test")
    artifacts = optimise_profile(profile, HaloParams())
    print("groups found in the custom workload:")
    for line in artifacts.describe_groups():
        print("  " + line)

    base_cycles, base_misses = measure(
        workload,
        lambda memory: Machine(
            workload.program, SizeClassAllocator(AddressSpace(1)), memory=memory
        ),
    )

    def halo_machine(memory):
        runtime = make_runtime(artifacts, AddressSpace(1))
        return Machine(
            workload.program,
            runtime.allocator,
            memory=memory,
            instrumentation=runtime.instrumentation,
            state_vector=runtime.state_vector,
        )

    halo_cycles, halo_misses = measure(workload, halo_machine)

    print(f"\nbaseline: {base_cycles:12,.0f} cycles, {base_misses:8,} L1D misses")
    print(f"HALO:     {halo_cycles:12,.0f} cycles, {halo_misses:8,} L1D misses")
    print(
        f"\nL1D miss reduction {100 * (base_misses - halo_misses) / base_misses:+.1f}%, "
        f"speedup {100 * (base_cycles / halo_cycles - 1):+.1f}%"
    )


if __name__ == "__main__":
    main()
