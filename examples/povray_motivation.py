#!/usr/bin/env python3
"""The paper's Section 3 motivation, replayed on the povray stand-in.

Almost all of povray's heap data flows through the ``pov_malloc`` wrapper,
so identification by the immediate call site of ``malloc`` sees a single
context (the hot-data-streams failure), while HALO's full-context
identification separates the hot geometry (planes + CSG composites) from
the cold textures — the paper's Figure 9 grouping.

Run:  python examples/povray_motivation.py
"""

from collections import Counter

from repro import (
    HaloParams,
    HdsParams,
    analyse_profile,
    get_workload,
    measure_baseline,
    measure_halo,
    measure_hds,
    optimise_profile,
    profile_workload,
)


def main() -> None:
    workload = get_workload("povray")
    profile = profile_workload(workload, HaloParams(), scale="test", record_trace=True)

    # --- the wrapper problem, in numbers ---------------------------------
    sites = Counter(profile.object_site.values())
    top_site, top_count = sites.most_common(1)[0]
    total = sum(sites.values())
    print("immediate-call-site view (what site-keyed identification sees):")
    print(
        f"  {top_count}/{total} allocations ({top_count / total:.0%}) share one site: "
        f"{workload.program.describe_site(top_site)}"
    )

    print("\nfull-context view (what HALO's shadow stack sees):")
    for cid in sorted(profile.graph.nodes):
        print(
            f"  {profile.graph.accesses_of(cid):8d} accesses  "
            f"{profile.describe_context(cid)}"
        )

    # --- grouping (the Figure 9 moment) ----------------------------------
    halo = optimise_profile(profile, HaloParams())
    print("\nHALO allocation groups (cf. paper Figure 9):")
    for line in halo.describe_groups():
        print("  " + line)

    hds = analyse_profile(profile, HdsParams())
    print(f"\nhot-data-streams co-allocation groups: {len(hds.groups)}")
    print(f"  (hot streams found: {hds.stream_count} — all map to the single wrapper site)")

    # --- measured consequences -------------------------------------------
    base = measure_baseline(workload, scale="ref", seed=1)
    halo_m = measure_halo(workload, halo, scale="ref", seed=1)
    hds_m = measure_hds(workload, hds, scale="ref", seed=1)

    def report(label, m):
        reduction = (base.cache.l1_misses - m.cache.l1_misses) / base.cache.l1_misses
        speedup = base.cycles / m.cycles - 1.0
        print(
            f"  {label:22s} L1D misses {m.cache.l1_misses:9,}  "
            f"({reduction * 100:+5.1f}%)   speedup {speedup * 100:+5.1f}%"
        )

    print("\nmeasured on the ref input:")
    print(f"  {'baseline':22s} L1D misses {base.cache.l1_misses:9,}")
    report("hot data streams", hds_m)
    report("HALO", halo_m)
    print(
        "\npovray is compute-bound: HALO removes a slice of the misses but the\n"
        "execution time barely moves — exactly the paper's Figures 13/14."
    )


if __name__ == "__main__":
    main()
